//! The discrete-event simulation engine.

use crate::calendar::{EventQueue, Scheduler, SchedulerKind, Timed};
use crate::delay::DelayModel;
use crate::metrics::{CsRecord, Metrics};
use crate::partition::PartitionModel;
use crate::sites::SiteStates;
use crate::trace::{Trace, TraceEvent};
use qmx_core::{
    Effects, FaultVerdict, LinkFaults, LossModel, MsgMeta, Outage, Protocol, ResourceId, SiteId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

/// Jittered exponential backoff for re-issuing aborted requests.
///
/// Attempt `k` (1-based) backs off `min(base · 2ᵏ⁻¹, cap)`, then an
/// equal-jitter draw picks uniformly from the upper half of that interval
/// so colliding contenders spread out instead of thundering back in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Backoff before the first retry.
    pub base: u64,
    /// Upper bound the exponential backoff saturates at.
    pub cap: u64,
    /// Retries per request before the client gives up for good (the
    /// attempt counter resets on every successful CS entry).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: 2_000,
            cap: 32_000,
            max_attempts: 8,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Message delay distribution (mean = the paper's `T`).
    pub delay: DelayModel,
    /// CS hold-time distribution (the paper's `E`).
    pub hold: DelayModel,
    /// Time between a crash and the delivery of `failure(i)` notices to
    /// every live site (failure-detector latency). Only used when
    /// [`SimConfig::oracle_notices`] is on.
    pub detect_delay: u64,
    /// Whether the simulator delivers oracle `failure(i)` notices after
    /// crashes and partitions (the paper's §6 failure model). Disable when
    /// the sites run under the heartbeat [`qmx_core::Detector`] wrapper,
    /// which derives suspicion from missed heartbeats instead of an
    /// omniscient oracle.
    pub oracle_notices: bool,
    /// Wire-message fault model (drops/duplication); [`LossModel::None`]
    /// reproduces the paper's error-free channels.
    pub loss: LossModel,
    /// Scheduled transient one-directional link outages.
    pub outages: Vec<Outage>,
    /// Per-request deadline: each injected arrival arms
    /// `set_deadline(now + deadline)` on its site before `request_cs`, so
    /// stacks whose protocol supports aborting
    /// ([`qmx_core::Protocol::abort_cs`]) give up and withdraw once the
    /// wait exceeds this budget. `None` disables deadlines.
    pub deadline: Option<u64>,
    /// Closed-loop client retry: after a site's request aborts (deadline
    /// expiry or [`Simulator::schedule_abort`]), re-issue it after a
    /// jittered exponential backoff. `None` drops aborted requests.
    pub retry: Option<RetryPolicy>,
    /// Which event-scheduler implementation orders the future-event
    /// set. Both produce byte-identical executions (CI enforces it);
    /// the calendar queue is the fast default, the heap the reference.
    pub scheduler: SchedulerKind,
    /// RNG seed; runs are fully deterministic given the same seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            delay: DelayModel::Constant(1000),
            hold: DelayModel::Constant(100),
            detect_delay: 2000,
            oracle_notices: true,
            loss: LossModel::None,
            outages: Vec::new(),
            deadline: None,
            retry: None,
            // From `QMX_SCHEDULER` when set (the CI differential gate),
            // otherwise the calendar queue.
            scheduler: SchedulerKind::default(),
            seed: 0xC0FFEE,
        }
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: SiteId, to: SiteId, msg: M },
    Request { site: SiteId, rid: ResourceId },
    Exit { site: SiteId, rid: ResourceId },
    Crash { site: SiteId },
    Recover { site: SiteId },
    Notice { site: SiteId, failed: SiteId },
    Partition { groups: Vec<u32> },
    Cut { src: SiteId, dst: SiteId },
    Restore { src: SiteId, dst: SiteId },
    Heal,
    Tick { site: SiteId },
    Abort { site: SiteId, rid: ResourceId },
}

/// What the scheduler actually stores and scans: the `(time, seq)`
/// total-order pair plus the payload's slab index. Calendar/wheel bucket
/// scans and heap sifts touch only these 24 bytes; the `EventKind`
/// payload (with its message body) sits untouched in the simulator's
/// slab until the event is popped.
#[derive(Clone, Copy)]
struct EventKey {
    time: u64,
    seq: u64, // total order tie-breaker: insertion order
    slot: u32,
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for EventKey {}
impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

// The scheduling key for the calendar queue and timer wheel; must (and
// does) agree with `Ord` above — see the `Timed` contract.
impl Timed for EventKey {
    fn time(&self) -> u64 {
        self.time
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// The payload slab: `EventKind`s parked by slot index while their
/// [`EventKey`] waits in the scheduler. A push allocates a slot (free
/// list first), the pop that consumes the key takes the payload back and
/// recycles the slot — so steady state allocates nothing, and slab
/// capacity tracks the *peak* event population, not the event count.
struct PayloadSlab<M> {
    slots: Vec<Option<EventKind<M>>>,
    free: Vec<u32>,
}

impl<M> PayloadSlab<M> {
    fn with_capacity(capacity: usize) -> Self {
        PayloadSlab {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, kind: EventKind<M>) -> u32 {
        match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(kind);
                s
            }
            None => {
                self.slots.push(Some(kind));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn take(&mut self, slot: u32) -> EventKind<M> {
        let kind = self.slots[slot as usize]
            .take()
            .expect("popped key names a live payload");
        self.free.push(slot);
        kind
    }
}

/// Largest site count that keeps the dense `n * n` per-link FIFO clock
/// matrix (1024² × 8 B = 8 MB). Large-N runs use a sorted map instead:
/// only links that actually carried a message pay for an entry.
const DENSE_LINKS_MAX: usize = 1024;

/// Latest scheduled delivery time per directed link (FIFO enforcement).
enum LinkClocks {
    /// Flat `n * n` matrix indexed `from * n + to`.
    Dense(Vec<u64>),
    /// `from * n + to` → clock, populated on first use.
    Sparse(BTreeMap<u64, u64>),
}

impl LinkClocks {
    fn new(n: usize) -> Self {
        if n <= DENSE_LINKS_MAX {
            LinkClocks::Dense(vec![0; n * n])
        } else {
            LinkClocks::Sparse(BTreeMap::new())
        }
    }

    /// Advances the `from → to` link clock to at least `at` and returns
    /// the resulting delivery time (the max of `at` and the previous
    /// clock — deliveries on one link never reorder).
    #[inline]
    fn advance(&mut self, from: SiteId, to: SiteId, n: usize, at: u64) -> u64 {
        match self {
            LinkClocks::Dense(m) => {
                let link = &mut m[from.index() * n + to.index()];
                *link = at.max(*link);
                *link
            }
            LinkClocks::Sparse(m) => {
                let key = from.index() as u64 * n as u64 + to.index() as u64;
                let link = m.entry(key).or_insert(0);
                *link = at.max(*link);
                *link
            }
        }
    }
}

/// A deterministic discrete-event simulation of `N` protocol instances.
///
/// See the [crate documentation](crate) for an overview and example.
pub struct Simulator<P: Protocol> {
    sites: Vec<P>,
    cfg: SimConfig,
    rng: StdRng,
    now: u64,
    seq: u64,
    events: EventQueue<EventKey>,
    /// Event payloads, parked out of the scheduler's scan path — see
    /// [`PayloadSlab`].
    payloads: PayloadSlab<P::Msg>,
    /// Latest scheduled delivery time per directed link (FIFO
    /// enforcement): a flat matrix for small systems, a sorted map past
    /// [`DENSE_LINKS_MAX`] sites.
    link_clock: LinkClocks,
    /// Hot per-site driver scalars (timer slot, CS timestamps, crash
    /// bits), struct-of-arrays — see [`crate::sites`].
    states: SiteStates,
    pristine: BTreeMap<SiteId, P>,
    /// Per-site boot counter: bumped on every recovery and stamped into
    /// the fresh instance via `set_incarnation`, so transports fence
    /// pre-crash stragglers and detectors deduplicate re-broadcast rejoin
    /// announcements per restart.
    boots: BTreeMap<SiteId, u64>,
    /// Directed link-level reachability: which ordered pairs are cut.
    partition: PartitionModel,
    faults: LinkFaults,
    in_cs: Option<SiteId>,
    metrics: Metrics,
    trace: Option<Trace>,
    started: bool,
    /// Reusable effects buffer: every event drains it fully, so one
    /// allocation serves the whole run instead of one per event.
    scratch: Effects<P::Msg>,
    /// Scripted message delays (trace replay): consumed FIFO, one entry
    /// per non-dropped send, before falling back to sampling `cfg.delay`.
    delay_script: VecDeque<u64>,
    /// Scripted CS hold times: consumed FIFO, one entry per CS entry,
    /// before falling back to sampling `cfg.hold`.
    hold_script: VecDeque<u64>,
    /// Per-site retry-attempt counters for the closed-loop client
    /// ([`SimConfig::retry`]); reset on every successful CS entry.
    retry_attempts: Vec<u32>,
    /// Multi-resource overlays, keyed `(site, resource)` — only resources
    /// other than [`ResourceId::SOLO`] live here, so single-lock runs never
    /// touch these maps and stay on the struct-of-arrays hot path.
    requested_at_r: BTreeMap<(u32, u32), u64>,
    /// CS entry times for non-solo resources (see `requested_at_r`).
    entered_at_r: BTreeMap<(u32, u32), u64>,
    /// Safety monitor per non-solo resource: who holds each lock.
    in_cs_r: BTreeMap<u32, SiteId>,
    /// Retry-attempt counters per `(site, resource)` for non-solo
    /// resources.
    retry_attempts_r: BTreeMap<(u32, u32), u32>,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator over the given sites (indexed by their ids,
    /// which must be `0..N` in order).
    ///
    /// # Panics
    ///
    /// Panics if site ids are not exactly `0..N` in order.
    pub fn new(sites: Vec<P>, cfg: SimConfig) -> Self {
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.site(), SiteId(i as u32), "sites must be 0..N in order");
        }
        let n = sites.len();
        let faults = LinkFaults::new(cfg.loss.clone(), cfg.outages.clone());
        let scheduler = cfg.scheduler;
        Simulator {
            sites,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            now: 0,
            seq: 0,
            // Steady state keeps roughly one in-flight message per quorum
            // member per contender plus timers; 16n absorbs bursts without
            // ever reallocating in the experiments under study. Capped so
            // a 10⁵-site simulator does not pre-commit tens of megabytes
            // the (mostly uncontended) run never touches.
            events: EventQueue::new(scheduler, 64 + (16 * n).min(1 << 16)),
            payloads: PayloadSlab::with_capacity(64 + (16 * n).min(1 << 16)),
            link_clock: LinkClocks::new(n),
            states: SiteStates::new(n),
            pristine: BTreeMap::new(),
            boots: BTreeMap::new(),
            partition: PartitionModel::new(n),
            faults,
            in_cs: None,
            metrics: Metrics::new(),
            trace: None,
            started: false,
            scratch: Effects::new(),
            delay_script: VecDeque::new(),
            hold_script: VecDeque::new(),
            retry_attempts: vec![0; n],
            requested_at_r: BTreeMap::new(),
            entered_at_r: BTreeMap::new(),
            in_cs_r: BTreeMap::new(),
            retry_attempts_r: BTreeMap::new(),
        }
    }

    /// Scripts the next message delays: each non-dropped send consumes one
    /// entry, in send order, instead of sampling [`SimConfig::delay`];
    /// when the script runs dry, sampling resumes. Used by the model
    /// checker's trace replay to force an exact delivery schedule.
    pub fn script_delays(&mut self, delays: Vec<u64>) {
        self.delay_script = delays.into();
    }

    /// Scripts the next CS hold times: each CS entry consumes one entry,
    /// in entry order, instead of sampling [`SimConfig::hold`]; when the
    /// script runs dry, sampling resumes.
    pub fn script_holds(&mut self, holds: Vec<u64>) {
        self.hold_script = holds.into();
    }

    /// Number of sites.
    pub fn n(&self) -> usize {
        self.sites.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The site currently in its CS, if any (safety monitor's view).
    pub fn site_in_cs(&self) -> Option<SiteId> {
        self.in_cs
    }

    /// The site currently holding resource `rid`, if any (safety monitor's
    /// view). For [`ResourceId::SOLO`] this is [`Simulator::site_in_cs`].
    pub fn site_in_cs_r(&self, rid: ResourceId) -> Option<SiteId> {
        if rid == ResourceId::SOLO {
            self.in_cs
        } else {
            self.in_cs_r.get(&rid.0).copied()
        }
    }

    /// Whether `site` has crashed.
    pub fn is_crashed(&self, site: SiteId) -> bool {
        self.states.is_crashed(site)
    }

    /// Immutable access to a protocol instance (assertions in tests).
    pub fn site(&self, site: SiteId) -> &P {
        &self.sites[site.index()]
    }

    /// Enables execution tracing, keeping at most `cap` events.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Trace::new(cap));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn record(&mut self, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.push(ev);
        }
    }

    fn push(&mut self, time: u64, kind: EventKind<P::Msg>) {
        self.seq += 1;
        let slot = self.payloads.insert(kind);
        self.events.push(EventKey {
            time,
            seq: self.seq,
            slot,
        });
    }

    /// Schedules an application CS request at virtual time `at`.
    ///
    /// Requests for sites that are busy (still waiting for or holding a
    /// previous CS) when the event fires are dropped — arrival processes
    /// treat a busy site as not generating new demand, keeping "a site
    /// executes its CS requests sequentially one by one" (§2).
    pub fn schedule_request(&mut self, site: SiteId, at: u64) {
        self.push(
            at,
            EventKind::Request {
                site,
                rid: ResourceId::SOLO,
            },
        );
    }

    /// Schedules a CS request against a named resource of a multi-resource
    /// protocol (a [`qmx_core::LockSpace`] stack). The busy check applies
    /// per `(site, resource)` pair: the same site can hold several distinct
    /// locks concurrently, but never re-requests one it already waits for.
    pub fn schedule_request_r(&mut self, site: SiteId, rid: ResourceId, at: u64) {
        self.push(at, EventKind::Request { site, rid });
    }

    /// Schedules a whole batch of CS requests (pre-generated arrivals)
    /// in one bulk load: a single heapify / bucket-fill with one resize
    /// check instead of per-event pushes. Sequence numbers are assigned
    /// in slice order, so the execution is byte-identical to calling
    /// [`Simulator::schedule_request`] once per pair.
    pub fn schedule_requests(&mut self, arrivals: &[(SiteId, u64)]) {
        let mut seq = self.seq;
        let events: Vec<EventKey> = arrivals
            .iter()
            .map(|&(site, at)| {
                seq += 1;
                EventKey {
                    time: at,
                    seq,
                    slot: self.payloads.insert(EventKind::Request {
                        site,
                        rid: ResourceId::SOLO,
                    }),
                }
            })
            .collect();
        self.seq = seq;
        self.events.bulk_load(events);
    }

    /// Bulk-loads multi-resource arrivals, the `(site, resource, at)`
    /// analogue of [`Simulator::schedule_requests`]. Sequence numbers are
    /// assigned in slice order, so the run is byte-identical to scheduling
    /// each arrival with [`Simulator::schedule_request_r`] in turn.
    pub fn schedule_requests_r(&mut self, arrivals: &[(SiteId, ResourceId, u64)]) {
        let mut seq = self.seq;
        let events: Vec<EventKey> = arrivals
            .iter()
            .map(|&(site, rid, at)| {
                seq += 1;
                EventKey {
                    time: at,
                    seq,
                    slot: self.payloads.insert(EventKind::Request { site, rid }),
                }
            })
            .collect();
        self.seq = seq;
        self.events.bulk_load(events);
    }

    /// Schedules a client-side abort of `site`'s pending CS request at
    /// virtual time `at` ([`qmx_core::Protocol::abort_cs`]). A no-op if
    /// the site is not waiting (or parked) when the event fires — a race
    /// between the abort and an in-flight grant resolves to whichever
    /// landed first: clean entry or clean abort, never a lost lock.
    pub fn schedule_abort(&mut self, site: SiteId, at: u64) {
        self.push(
            at,
            EventKind::Abort {
                site,
                rid: ResourceId::SOLO,
            },
        );
    }

    /// Schedules an abort of `site`'s pending request for a named resource
    /// (see [`Simulator::schedule_abort`] for the race semantics).
    pub fn schedule_abort_r(&mut self, site: SiteId, rid: ResourceId, at: u64) {
        self.push(at, EventKind::Abort { site, rid });
    }

    /// Schedules a crash of `site` at virtual time `at`. When
    /// [`SimConfig::oracle_notices`] is on, failure notices reach every
    /// live site `detect_delay` later.
    pub fn schedule_crash(&mut self, site: SiteId, at: u64) {
        self.push(at, EventKind::Crash { site });
    }

    /// Schedules a symmetric group-split partition at virtual time `at`:
    /// `groups[i]` is the partition-group id of site `i`. Messages between
    /// different groups are dropped from then on, including ones already in
    /// flight, and after `detect_delay` each site receives a failure notice
    /// for every site outside its group (a partition is indistinguishable
    /// from the remote sites crashing — §2's model has no way to tell).
    ///
    /// This is a convenience wrapper over the directed link-cut model: the
    /// split decomposes into pairwise [`Simulator::schedule_cut`]s, so
    /// overlapping and repeated partitions compose additively — a second
    /// split adds its cuts to whatever is already severed instead of
    /// overwriting it, and notices are injected only for links that were
    /// still alive when the event fired.
    ///
    /// # Panics
    ///
    /// Panics if `groups.len() != n` when the event fires.
    pub fn schedule_partition(&mut self, groups: Vec<u32>, at: u64) {
        self.push(at, EventKind::Partition { groups });
    }

    /// Schedules a cut of the **directed** link `src → dst` at virtual
    /// time `at`: from then on messages from `src` to `dst` (including
    /// ones already in flight) are dropped, while `dst → src` traffic is
    /// unaffected — the primitive for asymmetric partitions where A hears
    /// B but B does not hear A. Cuts compose: each link is governed
    /// independently, and re-cutting an already-cut link is a no-op.
    ///
    /// When [`SimConfig::oracle_notices`] is on, `dst` — the site that
    /// stops hearing from `src` — receives a `failure(src)` notice
    /// `detect_delay` later (one-way silence is indistinguishable from the
    /// sender crashing, which is precisely the asymmetric-view hazard).
    pub fn schedule_cut(&mut self, src: SiteId, dst: SiteId, at: u64) {
        self.push(at, EventKind::Cut { src, dst });
    }

    /// Schedules a restore of the directed link `src → dst` at virtual
    /// time `at`. Only this link heals; other cuts stay in force. No
    /// recovery notices are delivered (see [`Simulator::schedule_heal`]).
    pub fn schedule_restore(&mut self, src: SiteId, dst: SiteId, at: u64) {
        self.push(at, EventKind::Restore { src, dst });
    }

    /// Schedules a heal of **every** cut link at virtual time `at`: from
    /// then on messages flow between all sites again.
    ///
    /// **Recovery semantics** (documented choice): no "recovery notices"
    /// are delivered. The paper's §6 machinery handles *failures* —
    /// reconstruction of quorums around suspected-dead sites — but defines
    /// no rejoin protocol, so a healed partition simply restores
    /// connectivity: sites that treated remote peers as failed keep their
    /// reconstructed quorums (safe — coteries intersect), and in-flight
    /// retransmissions from the other side resume being delivered, where
    /// the transport's dedup absorbs any copies that got through before
    /// the split.
    pub fn schedule_heal(&mut self, at: u64) {
        self.push(at, EventKind::Heal);
    }

    /// Whether the directed link `src → dst` is currently cut (tests and
    /// availability analyses).
    pub fn is_link_cut(&self, src: SiteId, dst: SiteId) -> bool {
        self.partition.is_cut(src, dst)
    }

    /// Whether `site` currently has a restart scheduled (pristine state
    /// captured and a `Recover` event queued).
    pub fn has_scheduled_recovery(&self, site: SiteId) -> bool {
        self.pristine.contains_key(&site)
    }

    fn severed(&self, a: SiteId, b: SiteId) -> bool {
        self.partition.is_cut(a, b)
    }

    /// Injects the oracle `failure(src)` notice at `dst` for a newly-cut
    /// directed link: `dst` stops hearing from `src`, so after the
    /// detection delay it concludes `src` failed. Skipped entirely in
    /// detector mode (heartbeat silence carries the information instead).
    fn notice_for_cut(&mut self, src: SiteId, dst: SiteId) {
        if !self.cfg.oracle_notices || self.states.is_crashed(src) || self.states.is_crashed(dst) {
            return;
        }
        self.push(
            self.now + self.cfg.detect_delay,
            EventKind::Notice {
                site: dst,
                failed: src,
            },
        );
    }

    /// Re-arms the wake-up event for `site` from its `next_timer()`.
    ///
    /// The armed slot in [`SiteStates`] is the single source of truth: a
    /// `Tick` event whose time does not match it when it fires was
    /// superseded by a re-arm (or cancelled outright when the timer
    /// disappeared) and is dropped without a protocol dispatch. That
    /// tombstoning is what lets this always track the *exact* next due
    /// time — the old "earlier tick wins" rule kept stale ticks live and
    /// let them fire as spurious `on_timer` calls, which at large N is
    /// itself a hot path.
    fn arm_timer(&mut self, site: SiteId) {
        let Some(due) = self.sites[site.index()].next_timer() else {
            // Timer disappeared (deadline cleared, detector quiesced):
            // clearing the slot tombstones any in-flight tick.
            self.states.clear_tick(site);
            return;
        };
        let due = due.max(self.now);
        if self.states.armed_tick(site) == Some(due) {
            return; // already armed at exactly this time
        }
        self.states.arm_tick(site, due);
        self.push(due, EventKind::Tick { site });
    }

    fn apply_effects(&mut self, site: SiteId, fx: &mut Effects<P::Msg>) {
        let n = self.sites.len();
        for (to, msg) in fx.drain_sends() {
            debug_assert_ne!(to, site, "self-sends must be handled internally");
            if self.states.is_crashed(to) {
                self.metrics.count_dropped();
                continue;
            }
            if self.severed(site, to) {
                self.metrics.count_partition_dropped();
                continue;
            }
            self.metrics.count_msg(msg.kind());
            self.record(TraceEvent::Send {
                t: self.now,
                from: site,
                to,
                kind: msg.kind(),
            });
            // Fault injection: the message may be eaten or cloned by the
            // network before the delay is even sampled.
            let copies = {
                let rng = &mut self.rng;
                match self
                    .faults
                    .decide(site, to, self.now, || rng.gen_range(0.0f64..1.0))
                {
                    FaultVerdict::Deliver => 1,
                    FaultVerdict::Drop => {
                        self.metrics.count_injected_drop();
                        0
                    }
                    FaultVerdict::Duplicate => {
                        self.metrics.count_injected_dup();
                        2
                    }
                }
            };
            let mut msg = Some(msg);
            for c in (1..=copies).rev() {
                // FIFO per ordered link: delivery times never reorder
                // (equal times are delivered in send order via the event
                // seq number). The duplicate copy follows its original.
                let sampled = match self.delay_script.pop_front() {
                    Some(d) => d,
                    None => self.cfg.delay.sample(&mut self.rng),
                };
                let at = self.link_clock.advance(site, to, n, self.now + sampled);
                // Move the owned message into its final copy; only an
                // injected duplicate ever pays for a clone.
                let msg = if c == 1 {
                    msg.take().expect("last copy")
                } else {
                    msg.as_ref().expect("copies remain").clone()
                };
                self.push(
                    at,
                    EventKind::Deliver {
                        from: site,
                        to,
                        msg,
                    },
                );
            }
        }
        self.arm_timer(site);
        for rid in fx.drain_entered() {
            if rid == ResourceId::SOLO {
                assert!(
                    self.in_cs.is_none(),
                    "MUTUAL EXCLUSION VIOLATED at t={}: {} entered while {:?} is in the CS",
                    self.now,
                    site,
                    self.in_cs
                );
                self.in_cs = Some(site);
                self.retry_attempts[site.index()] = 0;
                self.states.set_entered_at(site, self.now);
            } else {
                let prev = self.in_cs_r.insert(rid.0, site);
                assert!(
                    prev.is_none(),
                    "MUTUAL EXCLUSION VIOLATED at t={} on {}: {} entered while {:?} holds it",
                    self.now,
                    rid,
                    site,
                    prev
                );
                self.retry_attempts_r.remove(&(site.0, rid.0));
                self.entered_at_r.insert((site.0, rid.0), self.now);
            }
            self.record(TraceEvent::Enter { t: self.now, site });
            let hold = match self.hold_script.pop_front() {
                Some(h) => h,
                None => self.cfg.hold.sample(&mut self.rng),
            };
            self.push(self.now + hold, EventKind::Exit { site, rid });
        }
    }

    /// Runs one protocol entry point on `site` against the reused scratch
    /// effects buffer (stamping the site's clock first) and applies the
    /// results. The buffer is drained by `apply_effects`, so returning it
    /// to `self.scratch` hands its capacity to the next event.
    fn dispatch(&mut self, site: SiteId, f: impl FnOnce(&mut P, &mut Effects<P::Msg>)) {
        let mut fx = std::mem::take(&mut self.scratch);
        let s = &mut self.sites[site.index()];
        let aborts_before = s.abort_counters().map_or(0, |c| c.aborts);
        s.set_now(self.now);
        f(s, &mut fx);
        self.apply_effects(site, &mut fx);
        self.scratch = fx;
        // Any entry point can abort the site's request — an explicit abort
        // event, or a deadline expiring inside `on_timer`. The closed-loop
        // client reacts here, off the counter delta.
        let aborts_after = self.sites[site.index()]
            .abort_counters()
            .map_or(0, |c| c.aborts);
        if aborts_after > aborts_before {
            // Multi-resource protocols attribute each abort to a resource;
            // single-resource protocols return an empty list and retry the
            // solo lock, exactly as before the lock-space layer existed.
            let aborted = self.sites[site.index()].drain_aborted_resources();
            if aborted.is_empty() {
                self.maybe_retry(site, ResourceId::SOLO);
            } else {
                for rid in aborted {
                    self.maybe_retry(site, rid);
                }
            }
        }
    }

    /// Re-issues an aborted request after a jittered exponential backoff,
    /// if a [`RetryPolicy`] is configured and attempts remain. The retry
    /// is a regular arrival: it re-arms the deadline and competes like any
    /// other request.
    fn maybe_retry(&mut self, site: SiteId, rid: ResourceId) {
        let Some(r) = self.cfg.retry else { return };
        let attempts = if rid == ResourceId::SOLO {
            &mut self.retry_attempts[site.index()]
        } else {
            self.retry_attempts_r.entry((site.0, rid.0)).or_insert(0)
        };
        if *attempts >= r.max_attempts {
            return;
        }
        *attempts += 1;
        let exp = r
            .base
            .saturating_mul(1u64 << (*attempts - 1).min(31))
            .min(r.cap.max(1));
        // Equal jitter: uniform over the upper half of the interval keeps
        // contenders spread out without collapsing the backoff entirely.
        let backoff = self.rng.gen_range(exp / 2..=exp).max(1);
        self.metrics.count_retry();
        self.push(self.now + backoff, EventKind::Request { site, rid });
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.sites.len() {
            self.dispatch(SiteId(i as u32), |s, fx| s.on_start(fx));
        }
    }

    fn step_event(&mut self, time: u64, kind: EventKind<P::Msg>) {
        self.now = time;
        match kind {
            EventKind::Deliver { from, to, msg } => {
                if self.states.is_crashed(to) {
                    self.metrics.count_dropped();
                    return;
                }
                if self.severed(from, to) {
                    self.metrics.count_partition_dropped();
                    return;
                }
                self.record(TraceEvent::Deliver {
                    t: self.now,
                    from,
                    to,
                    kind: msg.kind(),
                });
                self.dispatch(to, |s, fx| s.handle(from, msg, fx));
            }
            EventKind::Request { site, rid } => {
                if self.states.is_crashed(site) {
                    return;
                }
                let s = &self.sites[site.index()];
                if rid == ResourceId::SOLO {
                    if s.in_cs() || s.wants_cs() {
                        return; // busy: drop the arrival
                    }
                    self.states.set_requested_at(site, self.now);
                } else {
                    if s.in_cs_r(rid) || s.wants_cs_r(rid) {
                        return; // busy on this resource: drop the arrival
                    }
                    self.requested_at_r.insert((site.0, rid.0), self.now);
                }
                let deadline = self.cfg.deadline.map(|d| self.now + d);
                self.dispatch(site, |s, fx| {
                    if rid == ResourceId::SOLO {
                        if deadline.is_some() {
                            s.set_deadline(deadline);
                        }
                        s.request_cs(fx);
                    } else {
                        if deadline.is_some() {
                            s.set_deadline_r(rid, deadline);
                        }
                        s.request_cs_r(rid, fx);
                    }
                });
            }
            EventKind::Exit { site, rid } => {
                if self.states.is_crashed(site) {
                    return;
                }
                if rid == ResourceId::SOLO {
                    let Some(entered_at) = self.states.entered_at(site) else {
                        // Stale exit from a pre-crash incarnation: the site
                        // crashed inside its CS and has since restarted
                        // fresh.
                        return;
                    };
                    debug_assert_eq!(self.in_cs, Some(site));
                    self.in_cs = None;
                    self.record(TraceEvent::Exit { t: self.now, site });
                    let rec = CsRecord {
                        site,
                        resource: ResourceId::SOLO,
                        requested_at: self
                            .states
                            .requested_at(site)
                            .expect("exit implies a request"),
                        entered_at,
                        exited_at: self.now,
                    };
                    self.metrics.record_cs(rec);
                    self.states.clear_cs_times(site);
                    self.dispatch(site, |s, fx| s.release_cs(fx));
                } else {
                    let Some(entered_at) = self.entered_at_r.remove(&(site.0, rid.0)) else {
                        return; // stale exit from a pre-crash incarnation
                    };
                    debug_assert_eq!(self.in_cs_r.get(&rid.0), Some(&site));
                    self.in_cs_r.remove(&rid.0);
                    self.record(TraceEvent::Exit { t: self.now, site });
                    let rec = CsRecord {
                        site,
                        resource: rid,
                        requested_at: self
                            .requested_at_r
                            .remove(&(site.0, rid.0))
                            .expect("exit implies a request"),
                        entered_at,
                        exited_at: self.now,
                    };
                    self.metrics.record_cs(rec);
                    self.dispatch(site, |s, fx| s.release_cs_r(rid, fx));
                }
            }
            EventKind::Crash { site } => {
                if !self.states.set_crashed(site) {
                    return;
                }
                self.record(TraceEvent::Crash { t: self.now, site });
                if self.in_cs == Some(site) {
                    // The CS dies with the site; the monitor frees the slot
                    // (the §6 recovery machinery must unblock the others).
                    self.in_cs = None;
                }
                self.states.clear_cs_times(site);
                // Every per-resource CS and pending request dies with the
                // site too; pending `Exit` events become stale tombstones.
                self.in_cs_r.retain(|_, holder| *holder != site);
                self.requested_at_r.retain(|&(s, _), _| s != site.0);
                self.entered_at_r.retain(|&(s, _), _| s != site.0);
                self.retry_attempts_r.retain(|&(s, _), _| s != site.0);
                if self.cfg.oracle_notices {
                    for i in 0..self.sites.len() {
                        let target = SiteId(i as u32);
                        if target != site && !self.states.is_crashed(target) {
                            self.push(
                                self.now + self.cfg.detect_delay,
                                EventKind::Notice {
                                    site: target,
                                    failed: site,
                                },
                            );
                        }
                    }
                }
            }
            EventKind::Recover { site } => {
                if !self.states.set_recovered(site) {
                    return; // never crashed (or already recovered): no-op
                }
                let Some(fresh) = self.pristine.remove(&site) else {
                    return;
                };
                self.sites[site.index()] = fresh;
                self.record(TraceEvent::Recover { t: self.now, site });
                let boot = self.boots.entry(site).or_insert(0);
                *boot += 1;
                let boot = *boot;
                self.dispatch(site, |s, fx| {
                    s.set_incarnation(boot);
                    s.on_start(fx);
                    s.on_recover(fx);
                });
            }
            EventKind::Notice { site, failed } => {
                if self.states.is_crashed(site) {
                    return;
                }
                self.record(TraceEvent::Notice {
                    t: self.now,
                    site,
                    failed,
                });
                self.dispatch(site, |s, fx| s.on_site_failure(failed, fx));
            }
            EventKind::Tick { site } => {
                // A tick is live only while its time matches the armed
                // slot; a re-arm or cancel since it was pushed tombstones
                // it (see `arm_timer`) and it dies here, undispatched.
                if self.states.armed_tick(site) != Some(self.now) {
                    return;
                }
                // Clear the arming slot first: `on_timer` may leave work
                // pending and `apply_effects` re-arms from `next_timer()`.
                self.states.clear_tick(site);
                if self.states.is_crashed(site) {
                    return;
                }
                let now = self.now;
                self.dispatch(site, |s, fx| s.on_timer(now, fx));
            }
            EventKind::Heal => {
                // See `schedule_heal` for the (documented) recovery
                // semantics: connectivity returns, no notices are sent.
                self.partition.restore_all();
            }
            EventKind::Partition { groups } => {
                // The symmetric split decomposes into pairwise directed
                // cuts; only links that were still alive get a notice, so
                // overlapping episodes never double-inject.
                let newly = self.partition.cut_groups(&groups);
                for (src, dst) in newly {
                    self.notice_for_cut(src, dst);
                }
            }
            EventKind::Cut { src, dst } => {
                if self.partition.cut(src, dst) {
                    self.notice_for_cut(src, dst);
                }
            }
            EventKind::Restore { src, dst } => {
                self.partition.restore(src, dst);
            }
            EventKind::Abort { site, rid } => {
                if self.states.is_crashed(site) {
                    return;
                }
                self.dispatch(site, |s, fx| {
                    if rid == ResourceId::SOLO {
                        let _ = s.abort_cs(fx);
                    } else {
                        let _ = s.abort_cs_r(rid, fx);
                    }
                });
            }
        }
    }

    /// Runs until the event queue drains or virtual time exceeds `horizon`.
    /// Returns the number of events processed.
    ///
    /// # Panics
    ///
    /// Panics if two sites are ever in the CS simultaneously (safety
    /// monitor).
    pub fn run_to_quiescence(&mut self, horizon: u64) -> usize {
        self.ensure_started();
        let mut processed = 0;
        while let Some(key) = self.events.pop() {
            let kind = self.payloads.take(key.slot);
            if key.time > horizon {
                // Past the horizon: stop (event is dropped; simulations
                // measure within the horizon only).
                drop(kind);
                self.now = horizon;
                break;
            }
            self.step_event(key.time, kind);
            processed += 1;
        }
        // Snapshot transport-layer totals into the metrics (overwrites, so
        // repeated calls stay correct).
        let mut totals = qmx_core::TransportCounters::default();
        let mut dtotals = qmx_core::DetectorCounters::default();
        let mut atotals = qmx_core::AbortCounters::default();
        for s in &self.sites {
            if let Some(c) = s.transport_counters() {
                totals.merge(&c);
            }
            if let Some(c) = s.detector_counters() {
                dtotals.merge(&c);
            }
            if let Some(c) = s.abort_counters() {
                atotals.merge(&c);
            }
        }
        self.metrics.set_transport_totals(totals);
        self.metrics.set_detector_totals(dtotals);
        self.metrics.set_abort_totals(atotals);
        processed
    }

    /// Whether any events remain queued.
    pub fn has_pending_events(&self) -> bool {
        !self.events.is_empty()
    }
}

impl<P: Protocol + Clone> Simulator<P> {
    /// Schedules a restart of `site` at virtual time `at` with **fresh**
    /// protocol state: a clone of the instance is captured *now* (call this
    /// before running, so the captured state is pristine) and swapped in
    /// when the event fires. The recovered incarnation runs its `on_start`
    /// and `on_recover` hooks; under the [`qmx_core::Detector`] wrapper
    /// that announces a rejoin to every peer and opens the rejoin grace
    /// window, so recovery needs no oracle assistance.
    pub fn schedule_recovery(&mut self, site: SiteId, at: u64) {
        self.pristine.insert(site, self.sites[site.index()].clone());
        self.push(at, EventKind::Recover { site });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmx_core::{
        Config, DelayOptimal, Detector, DetectorConfig, MsgKind, Reliable, TransportConfig,
    };

    fn full_quorum_sim(n: u32, cfg: SimConfig) -> Simulator<DelayOptimal> {
        let quorum: Vec<SiteId> = (0..n).map(SiteId).collect();
        Simulator::new(
            (0..n)
                .map(|i| DelayOptimal::new(SiteId(i), quorum.clone(), Config::default()))
                .collect(),
            cfg,
        )
    }

    fn reliable_full_quorum_sim(n: u32, cfg: SimConfig) -> Simulator<Reliable<DelayOptimal>> {
        let quorum: Vec<SiteId> = (0..n).map(SiteId).collect();
        Simulator::new(
            (0..n)
                .map(|i| {
                    Reliable::new(
                        DelayOptimal::new(SiteId(i), quorum.clone(), Config::default()),
                        TransportConfig::default(),
                    )
                })
                .collect(),
            cfg,
        )
    }

    /// Full detector stack: `Detector<Reliable<DelayOptimal>>` — heartbeats
    /// ride the raw channel, app traffic gets the reliable transport.
    fn detector_sim(n: u32, cfg: SimConfig) -> Simulator<Detector<Reliable<DelayOptimal>>> {
        let quorum: Vec<SiteId> = (0..n).map(SiteId).collect();
        Simulator::new(
            (0..n)
                .map(|i| {
                    Detector::new(
                        Reliable::new(
                            DelayOptimal::new(SiteId(i), quorum.clone(), Config::default()),
                            TransportConfig::default(),
                        ),
                        quorum.clone(),
                        DetectorConfig::default(),
                    )
                })
                .collect(),
            cfg,
        )
    }

    #[test]
    fn single_request_completes() {
        let mut sim = full_quorum_sim(3, SimConfig::default());
        sim.schedule_request(SiteId(0), 0);
        sim.run_to_quiescence(100_000);
        assert_eq!(sim.metrics().completed_cs(), 1);
        let rec = sim.metrics().records()[0];
        assert_eq!(rec.site, SiteId(0));
        // Response (request -> exit) = round trip + CS time = 2T + E.
        assert_eq!(rec.response_time(), 2100);
        assert_eq!(rec.waiting_time(), 2000);
        assert_eq!(rec.exited_at - rec.entered_at, 100);
    }

    #[test]
    fn light_load_message_count_is_3_k_minus_1() {
        let mut sim = full_quorum_sim(5, SimConfig::default());
        sim.schedule_request(SiteId(2), 0);
        sim.run_to_quiescence(100_000);
        // K = 5 incl. self: 3(K-1) = 12 wire messages.
        assert_eq!(sim.metrics().total_messages(), 12);
        assert_eq!(sim.metrics().messages_of(MsgKind::Request), 4);
        assert_eq!(sim.metrics().messages_of(MsgKind::Reply), 4);
        assert_eq!(sim.metrics().messages_of(MsgKind::Release), 4);
    }

    #[test]
    fn contended_run_is_safe_and_live() {
        let mut sim = full_quorum_sim(4, SimConfig::default());
        for i in 0..4 {
            sim.schedule_request(SiteId(i), (i as u64) * 10);
        }
        sim.run_to_quiescence(1_000_000);
        assert_eq!(sim.metrics().completed_cs(), 4);
        assert_eq!(sim.site_in_cs(), None);
        assert!(!sim.has_pending_events());
    }

    #[test]
    fn sync_delay_is_one_t_under_contention() {
        // Constant delay: after the first exit, the next site should enter
        // exactly T later (delay-optimal claim).
        let mut sim = full_quorum_sim(3, SimConfig::default());
        sim.schedule_request(SiteId(0), 0);
        sim.schedule_request(SiteId(1), 100);
        sim.schedule_request(SiteId(2), 200);
        sim.run_to_quiescence(1_000_000);
        assert_eq!(sim.metrics().completed_cs(), 3);
        for d in sim.metrics().sync_delays() {
            assert_eq!(d, 1000, "sync delay must be exactly T");
        }
    }

    #[test]
    fn busy_arrivals_are_dropped() {
        let mut sim = full_quorum_sim(2, SimConfig::default());
        sim.schedule_request(SiteId(0), 0);
        sim.schedule_request(SiteId(0), 1); // still waiting: dropped
        sim.run_to_quiescence(100_000);
        assert_eq!(sim.metrics().completed_cs(), 1);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| {
            let cfg = SimConfig {
                delay: DelayModel::Exponential { mean: 500 },
                seed,
                ..SimConfig::default()
            };
            let mut sim = full_quorum_sim(4, cfg);
            for i in 0..4 {
                for r in 0..5u64 {
                    sim.schedule_request(SiteId(i), r * 1500 + i as u64);
                }
            }
            sim.run_to_quiescence(10_000_000);
            (
                sim.metrics().total_messages(),
                sim.metrics().completed_cs(),
                sim.metrics()
                    .records()
                    .iter()
                    .map(|r| (r.site, r.entered_at))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(7), run(7));
        // And a different seed actually changes timings.
        assert_ne!(run(7).2, run(8).2);
    }

    #[test]
    fn crash_drops_messages_and_notifies() {
        let mut sim = full_quorum_sim(3, SimConfig::default());
        sim.schedule_crash(SiteId(2), 0);
        sim.schedule_request(SiteId(0), 10);
        sim.run_to_quiescence(1_000_000);
        // Site 0's quorum includes crashed site 2 (fixed quorum): it cannot
        // complete, but the run must terminate without safety violations.
        assert!(sim.is_crashed(SiteId(2)));
        assert_eq!(sim.metrics().completed_cs(), 0);
        assert!(sim.metrics().dropped_to_crashed() > 0);
        assert!(sim.site(SiteId(0)).is_inaccessible());
    }

    #[test]
    fn traces_are_recorded_and_deterministic() {
        let run = || {
            let mut sim = full_quorum_sim(3, SimConfig::default());
            sim.enable_trace(10_000);
            sim.schedule_request(SiteId(0), 0);
            sim.schedule_request(SiteId(1), 50);
            sim.run_to_quiescence(1_000_000);
            sim.trace().expect("enabled").events().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must replay the identical trace");
        // The trace contains the full story: sends, deliveries, CS events.
        assert!(a.iter().any(|e| matches!(e, TraceEvent::Send { .. })));
        assert!(a.iter().any(|e| matches!(e, TraceEvent::Deliver { .. })));
        let cs: Vec<_> = a
            .iter()
            .filter(|e| matches!(e, TraceEvent::Enter { .. } | TraceEvent::Exit { .. }))
            .collect();
        assert_eq!(cs.len(), 4); // two entries + two exits
    }

    #[test]
    fn lossy_run_with_transport_completes() {
        let cfg = SimConfig {
            loss: LossModel::Iid {
                drop: 0.15,
                dup: 0.1,
            },
            seed: 42,
            ..SimConfig::default()
        };
        let mut sim = reliable_full_quorum_sim(4, cfg);
        for i in 0..4 {
            sim.schedule_request(SiteId(i), (i as u64) * 50);
        }
        sim.run_to_quiescence(10_000_000);
        assert_eq!(sim.metrics().completed_cs(), 4, "liveness under loss");
        assert!(sim.metrics().injected_drops() > 0, "loss actually injected");
        let t = sim.metrics().transport();
        assert!(t.retransmissions > 0, "drops forced retransmissions");
        assert!(!sim.has_pending_events(), "quiesced (retry cap held)");
    }

    #[test]
    fn lossy_run_without_transport_stalls() {
        // Regression guard for the injector itself: bare protocols assume
        // error-free channels, so injected loss must visibly wedge them.
        let cfg = SimConfig {
            loss: LossModel::Iid {
                drop: 0.3,
                dup: 0.0,
            },
            seed: 42,
            ..SimConfig::default()
        };
        let mut sim = full_quorum_sim(3, cfg);
        for r in 0..4u64 {
            for i in 0..3 {
                sim.schedule_request(SiteId(i), r * 20_000 + (i as u64) * 100);
            }
        }
        sim.run_to_quiescence(10_000_000);
        assert!(sim.metrics().injected_drops() > 0);
        assert!(
            sim.metrics().completed_cs() < 12,
            "a lossy channel must stall the bare protocol somewhere"
        );
        let wedged = (0..3).any(|i| sim.site(SiteId(i)).wants_cs());
        assert!(wedged, "some site is stuck waiting forever");
    }

    #[test]
    fn transient_partition_heals_and_request_completes() {
        // Notices would convert the partition into §6 failure handling;
        // push them past the horizon so this isolates heal + retransmit.
        let cfg = SimConfig {
            detect_delay: 100_000_000,
            ..SimConfig::default()
        };
        let mut sim = reliable_full_quorum_sim(3, cfg);
        sim.schedule_partition(vec![0, 0, 1], 5);
        sim.schedule_request(SiteId(0), 10);
        sim.schedule_heal(20_000);
        sim.run_to_quiescence(1_000_000);
        assert_eq!(
            sim.metrics().completed_cs(),
            1,
            "retransmissions must get through after the heal"
        );
        assert!(sim.metrics().transport().retransmissions > 0);
        // The completion happened after the heal, not before.
        assert!(sim.metrics().records()[0].entered_at > 20_000);
    }

    /// Regression (satellite): the old `partition: Option<Vec<u32>>`
    /// silently dropped a second partition — `EventKind::Partition`
    /// overwrote the previous groups, resurrecting links the first episode
    /// had severed. Episodes must compose: two overlapping splits leave
    /// the union of their cuts in force.
    #[test]
    fn overlapping_partitions_compose_instead_of_overwriting() {
        let mut sim = full_quorum_sim(4, SimConfig::default());
        // Episode 1 at t=10: {0,1} | {2,3}. Episode 2 at t=20: {0,2} |
        // {1,3}. Under the overwrite bug, episode 2 would resurrect the
        // 0↔2 links; under the composed model every ordered pair is cut.
        sim.schedule_partition(vec![0, 0, 1, 1], 10);
        sim.schedule_partition(vec![0, 1, 0, 1], 20);
        sim.schedule_request(SiteId(0), 30);
        sim.run_to_quiescence(50_000);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    assert!(
                        sim.is_link_cut(SiteId(i), SiteId(j)),
                        "{i} → {j} must stay cut under composed episodes"
                    );
                }
            }
        }
        // Site 0's request went nowhere — every copy died on a cut link,
        // attributed to the partition (nobody crashed).
        assert_eq!(sim.metrics().completed_cs(), 0);
        assert!(sim.metrics().dropped_by_partition() > 0);
        assert_eq!(sim.metrics().dropped_to_crashed(), 0);
        // And a heal clears *everything*, both episodes at once.
        sim.schedule_heal(sim.now() + 1);
        sim.run_to_quiescence(100_000);
        assert!(!sim.is_link_cut(SiteId(0), SiteId(2)));
        assert!(!sim.is_link_cut(SiteId(1), SiteId(3)));
    }

    #[test]
    fn directed_cut_is_asymmetric_and_restores_independently() {
        // Cut only 0 → 1: site 0's requests never reach arbiter 1, but
        // site 1 can still talk to site 0 the whole time. Restoring the
        // one cut link lets retransmissions complete the round.
        let cfg = SimConfig {
            oracle_notices: false,
            ..SimConfig::default()
        };
        let mut sim = reliable_full_quorum_sim(2, cfg);
        sim.schedule_cut(SiteId(0), SiteId(1), 5);
        sim.schedule_request(SiteId(0), 10);
        sim.schedule_restore(SiteId(0), SiteId(1), 30_000);
        sim.run_to_quiescence(1_000_000);
        assert!(!sim.is_link_cut(SiteId(0), SiteId(1)));
        assert_eq!(sim.metrics().completed_cs(), 1, "retransmit after restore");
        assert!(sim.metrics().records()[0].entered_at > 30_000);
        assert!(sim.metrics().dropped_by_partition() > 0);
        assert!(sim.metrics().transport().retransmissions > 0);
    }

    #[test]
    fn directed_cut_notices_only_the_silenced_listener() {
        // Oracle mode: cutting 1 → 0 silences site 1 *from site 0's
        // perspective* only, so exactly one notice fires — failure(1)
        // delivered at site 0. Site 1 keeps hearing site 0 and must not
        // receive any notice.
        let mut sim = full_quorum_sim(3, SimConfig::default());
        sim.enable_trace(10_000);
        sim.schedule_cut(SiteId(1), SiteId(0), 5);
        sim.run_to_quiescence(50_000);
        let notices: Vec<_> = sim
            .trace()
            .expect("enabled")
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Notice { site, failed, .. } => Some((*site, *failed)),
                _ => None,
            })
            .collect();
        assert_eq!(
            notices,
            vec![(SiteId(0), SiteId(1))],
            "one-way silence notifies only the listener"
        );
    }

    #[test]
    fn duplication_alone_is_absorbed_by_dedup() {
        let cfg = SimConfig {
            loss: LossModel::Iid {
                drop: 0.0,
                dup: 0.5,
            },
            seed: 7,
            ..SimConfig::default()
        };
        let mut sim = reliable_full_quorum_sim(3, cfg);
        for i in 0..3 {
            sim.schedule_request(SiteId(i), (i as u64) * 30);
        }
        sim.run_to_quiescence(10_000_000);
        assert_eq!(sim.metrics().completed_cs(), 3);
        assert!(sim.metrics().injected_dups() > 0);
        assert!(sim.metrics().transport().duplicates_dropped > 0);
    }

    #[test]
    fn transient_partition_causes_false_suspicion_then_restoration() {
        // The acceptance scenario: a transient outage makes live sites
        // falsely suspect each other through missed heartbeats (no oracle
        // involved), the heal restores them, and the protocol then runs
        // normally. Deterministic: constant delays, fixed seed.
        let cfg = SimConfig {
            oracle_notices: false,
            ..SimConfig::default()
        };
        let mut sim = detector_sim(3, cfg);
        sim.enable_trace(100_000);
        // Sever {0,1} | {2} from t=1000; hb_timeout (8000) expires inside
        // the window, so both sides suspect across the cut.
        sim.schedule_partition(vec![0, 0, 1], 1_000);
        sim.schedule_heal(20_000);
        // Requested well after the heal: restoration must have re-admitted
        // site 2 to the (fixed, full) quorum or this cannot complete.
        sim.schedule_request(SiteId(0), 40_000);
        sim.schedule_request(SiteId(2), 40_100);
        sim.run_to_quiescence(100_000);

        assert_eq!(sim.metrics().completed_cs(), 2, "restored sites complete");
        let d = sim.metrics().detector();
        assert!(d.suspicions >= 4, "0<->2 and 1<->2 both ways: {d:?}");
        assert_eq!(
            d.false_suspicions, d.suspicions,
            "nobody crashed, so every suspicion was false"
        );
        assert_eq!(d.rejoins_sent, 0, "no site restarted");
        assert!(d.heartbeats_sent > 0);
        // No oracle notice was ever delivered.
        let trace = sim.trace().expect("enabled");
        assert!(
            !trace
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::Notice { .. })),
            "suspicion must come from heartbeats, not oracle notices"
        );
        // Every detector converged back to an empty suspect set.
        for i in 0..3u32 {
            assert!(sim.site(SiteId(i)).suspected().is_empty(), "site {i}");
            assert!(!sim.site(SiteId(i)).inner().inner().is_inaccessible());
        }
    }

    #[test]
    fn partition_while_in_cs_never_double_grants() {
        // Regression for the false-suspicion re-grant hazard: site 0 enters
        // the CS on a 2-of-3 majority quorum {0,1} and holds it across a
        // partition that cuts it off from {1,2}. Both survivors falsely
        // suspect site 0 from heartbeat silence, reconstruct quorums to
        // {1,2}, and contend for arbiter 1's permission — the very
        // permission site 0 is in the CS on. Treating the suspicion as a
        // definitive failure would reclaim that lock and re-grant it,
        // letting a second site into the CS (the simulator's monitor
        // panics on overlap). Suspicion must instead park the contenders
        // until the partition heals — before the `fail_confirm` lease
        // expires — and site 0's own release hands the permission on.
        use qmx_quorum::majority::MajorityQuorumSource;
        let cfg = SimConfig {
            oracle_notices: false,
            hold: DelayModel::Constant(30_000),
            ..SimConfig::default()
        };
        let universe: Vec<SiteId> = (0..3).map(SiteId).collect();
        let mut sim: Simulator<Detector<Reliable<DelayOptimal>>> = Simulator::new(
            (0..3)
                .map(|i| {
                    Detector::new(
                        Reliable::new(
                            DelayOptimal::with_quorum_source(
                                SiteId(i),
                                Config::default(),
                                Box::new(MajorityQuorumSource::new(3)),
                            ),
                            TransportConfig::default(),
                        ),
                        universe.clone(),
                        DetectorConfig::default(),
                    )
                })
                .collect(),
            cfg,
        );
        // Site 0 enters at ~2_000 (one round trip to arbiter 1) and, with
        // E = 30_000, exits at ~32_000 — long after everything below.
        sim.schedule_request(SiteId(0), 0);
        // The cut lands while site 0 is inside the CS; suspicion fires at
        // ~10_500 (hb_timeout 8_000), confirmation would fire ~32_000
        // later — the heal at 25_000 beats the lease, so this partition
        // must read as a false suspicion, never a failure.
        sim.schedule_partition(vec![0, 1, 1], 2_500);
        sim.schedule_request(SiteId(1), 5_000);
        sim.schedule_request(SiteId(2), 6_000);
        sim.schedule_heal(25_000);
        sim.run_to_quiescence(300_000);

        // All three complete — and the monitor never saw two sites in the
        // CS at once (it panics the run otherwise).
        assert_eq!(sim.metrics().completed_cs(), 3);
        // Pin the interleaving the regression needs: site 0 was inside the
        // CS before the cut landed, and neither contender entered until
        // site 0's own release handed the permission on.
        let recs = sim.metrics().records();
        let first = recs.iter().find(|r| r.site == SiteId(0)).expect("site 0");
        assert!(first.entered_at < 2_500, "in the CS before the cut");
        for r in recs.iter().filter(|r| r.site != SiteId(0)) {
            assert!(
                r.entered_at >= first.exited_at,
                "{:?} entered at {} while site 0 held the CS until {}",
                r.site,
                r.entered_at,
                first.exited_at
            );
        }
        let d = sim.metrics().detector();
        assert!(d.suspicions > 0, "the cut must produce suspicions: {d:?}");
        assert_eq!(
            d.false_suspicions, d.suspicions,
            "nobody crashed: every suspicion was false: {d:?}"
        );
        assert_eq!(
            d.failures_confirmed, 0,
            "heal precedes the fail_confirm lease: {d:?}"
        );
        for i in 0..3u32 {
            assert!(sim.site(SiteId(i)).suspected().is_empty(), "site {i}");
        }
    }

    /// Pinned asymmetric-view regression: with only the 0 → 1 link cut,
    /// arbiter 1 stops hearing site 0 — which is inside the CS on
    /// arbiter 1's permission — while site 0 still hears everyone and
    /// site 2 still hears site 0. Without view reconciliation, arbiter 1
    /// escalates its suspicion to a *confirmed* failure after the
    /// `fail_confirm` lease (~43T, well inside site 0's 50T hold),
    /// reclaims the lock site 0 holds, and grants it to site 2: a double
    /// grant the simulator's monitor panics on. The fix: site 2 keeps
    /// vouching for site 0 on its beats to arbiter 1 (it hears site 0
    /// directly), so the confirmation is deferred for as long as the
    /// indirect evidence flows and the reclamation never happens.
    /// Suspicion itself still fires — it is revocable and parks the
    /// contenders — and site 0 learns it is suspected through the echo
    /// on arbiter 1's beats (the 1 → 0 direction is alive).
    #[test]
    fn asymmetric_cut_of_cs_holder_defers_confirmation_no_double_grant() {
        use qmx_quorum::majority::MajorityQuorumSource;
        let cfg = SimConfig {
            oracle_notices: false,
            hold: DelayModel::Constant(50_000),
            ..SimConfig::default()
        };
        let universe: Vec<SiteId> = (0..3).map(SiteId).collect();
        let mut sim: Simulator<Detector<Reliable<DelayOptimal>>> = Simulator::new(
            (0..3)
                .map(|i| {
                    Detector::new(
                        Reliable::new(
                            DelayOptimal::with_quorum_source(
                                SiteId(i),
                                Config::default(),
                                Box::new(MajorityQuorumSource::new(3)),
                            ),
                            TransportConfig::default(),
                        ),
                        universe.clone(),
                        DetectorConfig::default(),
                    )
                })
                .collect(),
            cfg,
        );
        // Site 0 enters at ~2T and holds to ~52T.
        sim.schedule_request(SiteId(0), 0);
        // One-way cut while site 0 is inside the CS: arbiter 1 hears
        // nothing from it, everyone else hears everything. The suspicion
        // fires at ~11T and the confirm lease would expire at ~43T —
        // before the hold ends — so only the vouch deferral stands
        // between this schedule and a double grant.
        sim.schedule_cut(SiteId(0), SiteId(1), 2_500);
        sim.schedule_request(SiteId(1), 5_000);
        sim.schedule_request(SiteId(2), 6_000);
        sim.schedule_restore(SiteId(0), SiteId(1), 45_000);
        sim.run_to_quiescence(400_000);

        // All three complete, and the monitor never saw two sites in the
        // CS at once (it panics the run otherwise).
        assert_eq!(sim.metrics().completed_cs(), 3);
        let recs = sim.metrics().records();
        let first = recs.iter().find(|r| r.site == SiteId(0)).expect("site 0");
        assert!(first.entered_at < 2_500, "in the CS before the cut");
        for r in recs.iter().filter(|r| r.site != SiteId(0)) {
            assert!(
                r.entered_at >= first.exited_at,
                "{:?} entered at {} while site 0 held the CS until {}",
                r.site,
                r.entered_at,
                first.exited_at
            );
        }
        let d = sim.metrics().detector();
        assert!(d.suspicions > 0, "one-way silence must suspect: {d:?}");
        assert_eq!(
            d.failures_confirmed, 0,
            "vouching must defer every confirmation: {d:?}"
        );
        assert!(
            d.confirms_deferred > 0,
            "the escalation path was reached and vetoed: {d:?}"
        );
        assert!(
            d.asymmetric_suspicions > 0,
            "site 0 heard it was suspected via the echo: {d:?}"
        );
        for i in 0..3u32 {
            assert!(sim.site(SiteId(i)).suspected().is_empty(), "site {i}");
        }
    }

    #[test]
    fn crash_recovery_rejoins_without_oracle() {
        // A real crash: site 2 dies, the survivors suspect it from silence,
        // it restarts with fresh state, announces its rejoin, and all three
        // sites (including the recovered one) then complete CS rounds.
        let cfg = SimConfig {
            oracle_notices: false,
            ..SimConfig::default()
        };
        let mut sim = detector_sim(3, cfg);
        sim.enable_trace(100_000);
        sim.schedule_crash(SiteId(2), 5_000);
        sim.schedule_recovery(SiteId(2), 30_000);
        sim.schedule_request(SiteId(0), 45_000);
        sim.schedule_request(SiteId(1), 45_100);
        sim.schedule_request(SiteId(2), 45_200);
        sim.run_to_quiescence(200_000);

        assert!(!sim.is_crashed(SiteId(2)));
        assert_eq!(sim.metrics().completed_cs(), 3, "all rounds completed");
        let d = sim.metrics().detector();
        assert!(d.suspicions >= 2, "both survivors suspected site 2: {d:?}");
        assert_eq!(
            d.false_suspicions, 0,
            "a genuine crash is not a false suspicion: {d:?}"
        );
        assert_eq!(d.rejoins_sent, 1, "one recovery announcement");
        assert!(d.rejoins_observed >= 2, "both survivors saw the rejoin");
        let trace = sim.trace().expect("enabled");
        assert!(trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::Recover {
                site: SiteId(2),
                ..
            }
        )));
        assert!(
            !trace
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::Notice { .. })),
            "no oracle notices in detector mode"
        );
        for i in 0..3u32 {
            assert!(sim.site(SiteId(i)).suspected().is_empty(), "site {i}");
            assert!(!sim.site(SiteId(i)).inner().inner().is_inaccessible());
        }
    }

    #[test]
    fn crash_of_cs_holder_recovers_via_detector() {
        // Site 0 crashes *inside* its CS holding every arbiter's lock. With
        // a fixed full quorum nobody can progress while it is down (the
        // dead site is in everyone's quorum), but after it restarts and
        // rejoins, the stale lock held by its old incarnation must have
        // been purged so both the survivor and the recovered site complete.
        let cfg = SimConfig {
            oracle_notices: false,
            ..SimConfig::default()
        };
        let mut sim = detector_sim(3, cfg);
        sim.schedule_request(SiteId(0), 0);
        // Entry at ~2000 (2T), hold 100: crash at 2050 is inside the CS.
        sim.schedule_crash(SiteId(0), 2_050);
        sim.schedule_recovery(SiteId(0), 40_000);
        sim.schedule_request(SiteId(1), 50_000);
        sim.schedule_request(SiteId(0), 60_000);
        sim.run_to_quiescence(200_000);

        // Site 1's round completed despite the crashed holder never sending
        // a release, and the recovered site 0 completed a fresh round.
        assert_eq!(sim.metrics().completed_cs(), 2);
        let by_site = sim.metrics().per_site_counts();
        assert_eq!(by_site.get(&SiteId(1)), Some(&1));
        assert_eq!(by_site.get(&SiteId(0)), Some(&1));
    }

    #[test]
    fn recovery_of_never_crashed_site_is_noop() {
        let mut sim = detector_sim(2, SimConfig::default());
        sim.schedule_recovery(SiteId(1), 100);
        sim.schedule_request(SiteId(0), 5_000);
        sim.run_to_quiescence(50_000);
        assert_eq!(sim.metrics().completed_cs(), 1);
        assert_eq!(sim.metrics().detector().rejoins_sent, 0);
    }

    /// In-process differential gate: the same fault-heavy scenario must
    /// produce the identical execution under both schedulers — metrics,
    /// trace, everything. (CI additionally runs the whole golden-counter
    /// suite under `QMX_SCHEDULER=heap` and `=calendar` and diffs.)
    #[test]
    fn heap_and_calendar_schedulers_replay_identically() {
        let run = |scheduler: SchedulerKind| {
            let cfg = SimConfig {
                delay: DelayModel::Exponential { mean: 700 },
                loss: LossModel::Iid {
                    drop: 0.1,
                    dup: 0.05,
                },
                oracle_notices: false,
                seed: 31,
                scheduler,
                ..SimConfig::default()
            };
            let mut sim = detector_sim(4, cfg);
            sim.enable_trace(100_000);
            for i in 0..4 {
                for r in 0..6u64 {
                    sim.schedule_request(SiteId(i), r * 9_000 + 37 * i as u64);
                }
            }
            sim.schedule_crash(SiteId(3), 11_000);
            sim.schedule_recovery(SiteId(3), 40_000);
            let events = sim.run_to_quiescence(400_000);
            (
                events,
                format!("{:?}", sim.metrics()),
                sim.trace().expect("enabled").events().to_vec(),
            )
        };
        let heap = run(SchedulerKind::Heap);
        for kind in [SchedulerKind::Calendar, SchedulerKind::Wheel] {
            let other = run(kind);
            assert_eq!(heap.0, other.0, "event counts diverged under {kind:?}");
            assert_eq!(heap.1, other.1, "metrics diverged under {kind:?}");
            assert_eq!(heap.2, other.2, "traces diverged under {kind:?}");
        }
    }

    /// Bulk-loaded arrivals assign sequence numbers in slice order, so
    /// the run is byte-identical to per-event scheduling.
    #[test]
    fn bulk_loaded_arrivals_match_individual_pushes() {
        let arrivals: Vec<(SiteId, u64)> = (0..5u32)
            .flat_map(|i| (0..8u64).map(move |r| (SiteId(i), r * 1_100 + 13 * i as u64)))
            .collect();
        for scheduler in [
            SchedulerKind::Heap,
            SchedulerKind::Calendar,
            SchedulerKind::Wheel,
        ] {
            let cfg = || SimConfig {
                delay: DelayModel::Exponential { mean: 400 },
                seed: 5,
                scheduler,
                ..SimConfig::default()
            };
            let mut one_by_one = full_quorum_sim(5, cfg());
            for &(s, t) in &arrivals {
                one_by_one.schedule_request(s, t);
            }
            let mut bulk = full_quorum_sim(5, cfg());
            bulk.schedule_requests(&arrivals);
            assert_eq!(
                one_by_one.run_to_quiescence(10_000_000),
                bulk.run_to_quiescence(10_000_000),
            );
            assert_eq!(
                format!("{:?}", one_by_one.metrics()),
                format!("{:?}", bulk.metrics()),
                "{scheduler:?}"
            );
        }
    }

    #[test]
    fn scheduled_abort_withdraws_and_frees_the_arbiters() {
        // Abort site 0's request before its grant arrives. The in-flight
        // Reply crosses the Abandon, comes back as an orphan Relinquish,
        // and a later request completes normally against clean arbiters.
        let mut sim = full_quorum_sim(2, SimConfig::default());
        sim.schedule_request(SiteId(0), 0);
        sim.schedule_abort(SiteId(0), 500);
        sim.schedule_request(SiteId(0), 10_000);
        sim.run_to_quiescence(100_000);
        assert_eq!(sim.metrics().completed_cs(), 1);
        assert!(sim.metrics().records()[0].entered_at > 10_000);
        let a = sim.metrics().aborts();
        assert_eq!(a.aborts, 1);
        assert_eq!(a.deadline_aborts, 0);
        assert_eq!(a.orphan_grants, 1, "the crossed Reply came back");
        assert_eq!(sim.metrics().retries(), 0, "no retry policy configured");
        assert!(!sim.has_pending_events());
    }

    #[test]
    fn abort_of_idle_site_is_noop() {
        let mut sim = full_quorum_sim(2, SimConfig::default());
        sim.schedule_abort(SiteId(0), 100);
        sim.schedule_request(SiteId(0), 200);
        sim.run_to_quiescence(100_000);
        assert_eq!(sim.metrics().completed_cs(), 1);
        assert_eq!(sim.metrics().aborts().aborts, 0);
    }

    #[test]
    fn deadline_expiry_aborts_a_request_wedged_on_a_crashed_arbiter() {
        // Site 1 (in site 0's fixed quorum) is dead, so the request can
        // never complete; with a deadline the client gives up instead of
        // waiting forever, and without a retry policy that is the end.
        let cfg = SimConfig {
            oracle_notices: false,
            deadline: Some(5_000),
            ..SimConfig::default()
        };
        let mut sim = full_quorum_sim(2, cfg);
        sim.schedule_crash(SiteId(1), 0);
        sim.schedule_request(SiteId(0), 10);
        sim.run_to_quiescence(100_000);
        assert_eq!(sim.metrics().completed_cs(), 0);
        let a = sim.metrics().aborts();
        assert_eq!(a.aborts, 1);
        assert_eq!(a.deadline_aborts, 1, "the deadline timer fired it");
        assert!(!sim.site(SiteId(0)).wants_cs(), "cleanly withdrawn");
        assert!(!sim.has_pending_events());
    }

    #[test]
    fn retry_with_backoff_completes_once_the_arbiter_recovers() {
        // Closed loop under the full detector stack: every deadline abort
        // re-issues the request after a jittered exponential backoff, so
        // when site 1 finally restarts and rejoins (detector handshake —
        // a bare recovered arbiter stays in its rejoin window forever),
        // a retry lands on a live quorum and completes.
        let cfg = SimConfig {
            oracle_notices: false,
            deadline: Some(5_000),
            retry: Some(RetryPolicy {
                base: 2_000,
                cap: 16_000,
                max_attempts: 20,
            }),
            ..SimConfig::default()
        };
        let mut sim = detector_sim(2, cfg);
        sim.schedule_crash(SiteId(1), 0);
        sim.schedule_recovery(SiteId(1), 50_000);
        sim.schedule_request(SiteId(0), 10);
        sim.run_to_quiescence(150_000);
        assert_eq!(sim.metrics().completed_cs(), 1);
        assert!(
            sim.metrics().records()[0].entered_at > 50_000,
            "nothing could complete before the recovery"
        );
        let a = *sim.metrics().aborts();
        assert!(a.aborts >= 2, "several attempts timed out first: {a:?}");
        assert_eq!(a.deadline_aborts, a.aborts);
        assert_eq!(sim.metrics().retries(), a.aborts, "every abort retried");
    }

    #[test]
    fn retry_attempts_are_capped() {
        // Nobody ever recovers: the client retries `max_attempts` times,
        // then gives up for good and the run quiesces.
        let cfg = SimConfig {
            oracle_notices: false,
            deadline: Some(3_000),
            retry: Some(RetryPolicy {
                base: 1_000,
                cap: 4_000,
                max_attempts: 3,
            }),
            ..SimConfig::default()
        };
        let mut sim = full_quorum_sim(2, cfg);
        sim.schedule_crash(SiteId(1), 0);
        sim.schedule_request(SiteId(0), 10);
        sim.run_to_quiescence(1_000_000);
        assert_eq!(sim.metrics().completed_cs(), 0);
        assert_eq!(sim.metrics().retries(), 3);
        // Initial attempt + three retries all hit the deadline.
        assert_eq!(sim.metrics().aborts().deadline_aborts, 4);
        assert!(!sim.site(SiteId(0)).wants_cs());
        assert!(!sim.has_pending_events());
    }

    #[test]
    fn fifo_per_link_is_preserved() {
        // With exponential delays, deliveries on one link must still be in
        // send order. We test indirectly: run a long contended simulation
        // and rely on the protocol's liveness (it would wedge or violate
        // safety if FIFO broke badly).
        let cfg = SimConfig {
            delay: DelayModel::Exponential { mean: 300 },
            seed: 99,
            ..SimConfig::default()
        };
        let mut sim = full_quorum_sim(5, cfg);
        for i in 0..5 {
            for r in 0..10u64 {
                sim.schedule_request(SiteId(i), r * 700 + 13 * i as u64);
            }
        }
        sim.run_to_quiescence(50_000_000);
        // Arrivals hitting a busy site are dropped, so fewer than the 50
        // scheduled requests complete; what matters is that the run
        // quiesces with every site idle and no wedged state.
        assert!(sim.metrics().completed_cs() >= 10);
        assert!(!sim.has_pending_events());
        for i in 0..5u32 {
            let s = sim.site(SiteId(i));
            assert!(!s.in_cs() && !s.wants_cs(), "site {i} wedged");
        }
    }
}
