//! Delay distributions for message latency and CS hold times.

use rand::rngs::StdRng;
use rand::Rng;

/// A distribution over non-negative virtual-time durations (ticks).
///
/// The paper's `T` (average message delay) is this distribution's mean;
/// experiment harnesses report synchronization delays in units of
/// [`DelayModel::mean`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Always exactly `ticks`.
    Constant(u64),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Minimum delay.
        lo: u64,
        /// Maximum delay.
        hi: u64,
    },
    /// Exponential with the given mean, truncated to at least 1 tick.
    ///
    /// Message delay is "unpredictable but has an upper bound" in the
    /// paper's model; the exponential is capped at `10 × mean`.
    Exponential {
        /// Mean delay in ticks.
        mean: u64,
    },
}

impl Default for DelayModel {
    /// One thousand ticks, constant — a convenient unit for reading
    /// synchronization delays directly in multiples of `T`.
    fn default() -> Self {
        DelayModel::Constant(1000)
    }
}

impl DelayModel {
    /// Samples a delay.
    ///
    /// ```
    /// use qmx_sim::DelayModel;
    /// use rand::{rngs::StdRng, SeedableRng};
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let d = DelayModel::Uniform { lo: 10, hi: 20 };
    /// let sample = d.sample(&mut rng);
    /// assert!((10..=20).contains(&sample));
    /// assert_eq!(d.mean(), 15.0);
    /// ```
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            DelayModel::Constant(t) => t,
            DelayModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform delay needs lo <= hi");
                rng.gen_range(lo..=hi)
            }
            DelayModel::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let raw = -(u.ln()) * mean as f64;
                (raw.round() as u64).clamp(1, mean.saturating_mul(10))
            }
        }
    }

    /// The distribution mean (the paper's `T` when used as message delay).
    pub fn mean(&self) -> f64 {
        match *self {
            DelayModel::Constant(t) => t as f64,
            DelayModel::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            DelayModel::Exponential { mean } => mean as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(DelayModel::Constant(7).sample(&mut rng), 7);
        }
        assert_eq!(DelayModel::Constant(7).mean(), 7.0);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = DelayModel::Uniform { lo: 5, hi: 15 };
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!((5..=15).contains(&s));
        }
        assert_eq!(d.mean(), 10.0);
    }

    #[test]
    fn exponential_mean_is_approximately_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = DelayModel::Exponential { mean: 1000 };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 1000.0).abs() < 50.0,
            "empirical mean {mean} too far from 1000"
        );
    }

    #[test]
    fn exponential_is_positive_and_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = DelayModel::Exponential { mean: 10 };
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!((1..=100).contains(&s));
        }
    }

    #[test]
    fn default_is_1000_constant() {
        assert_eq!(DelayModel::default(), DelayModel::Constant(1000));
    }
}
