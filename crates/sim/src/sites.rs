//! Struct-of-arrays per-site driver state.
//!
//! The simulator consults a handful of per-site scalars on *every*
//! event — the timer arming slot, the request/entry timestamps (which
//! double as the site's state tag: requested ≠ none ⇒ waiting, entered
//! ≠ none ⇒ in the CS), and the crashed bit. Previously these lived in
//! three `Vec<Option<u64>>`s (16 bytes per entry, half of it the
//! discriminant) scattered among the simulator's cold fields; here they
//! are dense `Vec<u64>` arrays using `u64::MAX` as the *none* sentinel
//! (8 bytes per entry, no branch on a discriminant) plus the
//! [`SiteSet`] crash bitset, grouped so the event loop's working set is
//! a few contiguous arrays. Cold per-site state — pristine protocol
//! snapshots, boot counters — stays in the simulator's own maps, out of
//! the hot cache lines.
//!
//! The sentinel is safe: virtual times are sums of delays bounded far
//! below `u64::MAX`, and the horizon convention (`u64::MAX / 2` for
//! "unbounded") keeps every legitimate timestamp below the sentinel.

use qmx_core::{SiteId, SiteSet};

/// The *none* sentinel for packed timestamp slots.
const NONE: u64 = u64::MAX;

/// Hot per-site driver state, one dense array per scalar.
#[derive(Debug)]
pub(crate) struct SiteStates {
    /// Earliest armed wake-up per site; `NONE` = no tick scheduled.
    armed_tick: Vec<u64>,
    /// When the outstanding CS request arrived; `NONE` = not waiting.
    requested_at: Vec<u64>,
    /// When the site entered its CS; `NONE` = not inside.
    entered_at: Vec<u64>,
    /// Crash bitset (inline up to 256 sites, spills beyond).
    crashed: SiteSet,
}

impl SiteStates {
    pub(crate) fn new(n: usize) -> Self {
        SiteStates {
            armed_tick: vec![NONE; n],
            requested_at: vec![NONE; n],
            entered_at: vec![NONE; n],
            crashed: SiteSet::new(),
        }
    }

    pub(crate) fn armed_tick(&self, site: SiteId) -> Option<u64> {
        let v = self.armed_tick[site.index()];
        (v != NONE).then_some(v)
    }

    pub(crate) fn arm_tick(&mut self, site: SiteId, at: u64) {
        self.armed_tick[site.index()] = at;
    }

    pub(crate) fn clear_tick(&mut self, site: SiteId) {
        self.armed_tick[site.index()] = NONE;
    }

    pub(crate) fn requested_at(&self, site: SiteId) -> Option<u64> {
        let v = self.requested_at[site.index()];
        (v != NONE).then_some(v)
    }

    pub(crate) fn set_requested_at(&mut self, site: SiteId, at: u64) {
        self.requested_at[site.index()] = at;
    }

    pub(crate) fn entered_at(&self, site: SiteId) -> Option<u64> {
        let v = self.entered_at[site.index()];
        (v != NONE).then_some(v)
    }

    pub(crate) fn set_entered_at(&mut self, site: SiteId, at: u64) {
        self.entered_at[site.index()] = at;
    }

    /// Clears both CS timestamps (on exit or crash: the pending round,
    /// if any, is gone).
    pub(crate) fn clear_cs_times(&mut self, site: SiteId) {
        self.requested_at[site.index()] = NONE;
        self.entered_at[site.index()] = NONE;
    }

    pub(crate) fn is_crashed(&self, site: SiteId) -> bool {
        self.crashed.contains(site)
    }

    /// Marks `site` crashed; `false` if it already was.
    pub(crate) fn set_crashed(&mut self, site: SiteId) -> bool {
        self.crashed.insert(site)
    }

    /// Clears the crash bit; `false` if the site was not crashed.
    pub(crate) fn set_recovered(&mut self, site: SiteId) -> bool {
        self.crashed.remove(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_round_trips() {
        let mut s = SiteStates::new(3);
        let site = SiteId(1);
        assert_eq!(s.requested_at(site), None);
        s.set_requested_at(site, 0); // time zero is a real timestamp
        assert_eq!(s.requested_at(site), Some(0));
        s.set_entered_at(site, 42);
        assert_eq!(s.entered_at(site), Some(42));
        s.clear_cs_times(site);
        assert_eq!(s.requested_at(site), None);
        assert_eq!(s.entered_at(site), None);
        assert_eq!(s.armed_tick(site), None);
        s.arm_tick(site, 7);
        assert_eq!(s.armed_tick(site), Some(7));
        s.clear_tick(site);
        assert_eq!(s.armed_tick(site), None);
    }

    #[test]
    fn crash_bits_toggle() {
        let mut s = SiteStates::new(300);
        let far = SiteId(299); // beyond the inline bitset words
        assert!(!s.is_crashed(far));
        assert!(s.set_crashed(far));
        assert!(!s.set_crashed(far));
        assert!(s.is_crashed(far));
        assert!(s.set_recovered(far));
        assert!(!s.set_recovered(far));
    }
}
