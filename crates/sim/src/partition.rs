//! Directed link-level reachability: which ordered site pairs can talk.
//!
//! The paper's §6 failure model treats a partition as indistinguishable
//! from the remote sites crashing, but says nothing about *asymmetric*
//! splits — A hears B while B does not hear A — even though those are what
//! real networks produce (half-open TCP connections, one-way firewall
//! rules, congested return paths). [`PartitionModel`] therefore tracks the
//! network's reachability at the finest grain that matters to a
//! message-passing protocol: one boolean per **ordered** pair of sites.
//!
//! Partition *episodes* compose: cutting `{0,1} | {2}` and later also
//! `{0} | {1,2}` leaves the union of both cuts in place, and restoring one
//! link does not resurrect the other. The legacy symmetric group-split API
//! ([`crate::Simulator::schedule_partition`]) decomposes into pairwise
//! cuts on this model, so overlapping and repeated partitions now behave
//! additively instead of silently overwriting each other.

use qmx_core::SiteId;

/// Per-ordered-pair link state for `n` sites: `cut(src, dst)` means
/// messages from `src` to `dst` are dropped, while `dst → src` traffic is
/// governed independently — the representation of an asymmetric partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionModel {
    n: usize,
    /// Flat `n * n` matrix indexed `src * n + dst`; `true` = cut.
    cut: Vec<bool>,
    /// Number of `true` entries, so the hot-path reachability check can
    /// short-circuit to "fully connected" without touching the matrix.
    active: usize,
}

impl PartitionModel {
    /// A fully connected network over `n` sites.
    pub fn new(n: usize) -> Self {
        PartitionModel {
            n,
            cut: vec![false; n * n],
            active: 0,
        }
    }

    /// Number of sites.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the directed link `src → dst` is currently cut.
    #[inline]
    pub fn is_cut(&self, src: SiteId, dst: SiteId) -> bool {
        self.active != 0 && self.cut[src.index() * self.n + dst.index()]
    }

    /// Whether any link is currently cut.
    pub fn any_cut(&self) -> bool {
        self.active != 0
    }

    /// Number of directed links currently cut.
    pub fn cut_links(&self) -> usize {
        self.active
    }

    /// Cuts the directed link `src → dst`. Returns `true` if the link was
    /// previously alive (idempotent: re-cutting an already-cut link is a
    /// no-op and returns `false`).
    pub fn cut(&mut self, src: SiteId, dst: SiteId) -> bool {
        let slot = &mut self.cut[src.index() * self.n + dst.index()];
        let newly = !*slot;
        if newly {
            *slot = true;
            self.active += 1;
        }
        newly
    }

    /// Restores the directed link `src → dst`. Returns `true` if the link
    /// was previously cut.
    pub fn restore(&mut self, src: SiteId, dst: SiteId) -> bool {
        let slot = &mut self.cut[src.index() * self.n + dst.index()];
        let was = *slot;
        if was {
            *slot = false;
            self.active -= 1;
        }
        was
    }

    /// Cuts both directions between every cross-group pair of the symmetric
    /// split described by `groups` (`groups[i]` = group id of site `i`),
    /// i.e. the legacy `schedule_partition` semantics expressed as pairwise
    /// cuts. Links already cut stay cut. Returns the ordered pairs that
    /// were *newly* severed, in `(src, dst)` index order — the caller uses
    /// them to inject oracle failure notices exactly once per pair.
    ///
    /// # Panics
    ///
    /// Panics if `groups.len() != n`.
    pub fn cut_groups(&mut self, groups: &[u32]) -> Vec<(SiteId, SiteId)> {
        assert_eq!(groups.len(), self.n, "one group per site");
        let mut newly = Vec::new();
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j && groups[i] != groups[j] {
                    let (src, dst) = (SiteId(i as u32), SiteId(j as u32));
                    if self.cut(src, dst) {
                        newly.push((src, dst));
                    }
                }
            }
        }
        newly
    }

    /// Restores every cut link (the legacy `schedule_heal` semantics).
    pub fn restore_all(&mut self) {
        self.cut.fill(false);
        self.active = 0;
    }

    /// Whether `src` and `dst` are mutually reachable (both directions
    /// alive). Used by availability analyses: a quorum is usable only when
    /// all its members can complete request/reply round trips.
    pub fn mutually_reachable(&self, src: SiteId, dst: SiteId) -> bool {
        !self.is_cut(src, dst) && !self.is_cut(dst, src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: SiteId = SiteId(0);
    const B: SiteId = SiteId(1);
    const C: SiteId = SiteId(2);

    #[test]
    fn cuts_are_directed() {
        let mut p = PartitionModel::new(3);
        assert!(!p.any_cut());
        assert!(p.cut(A, B));
        assert!(p.is_cut(A, B));
        assert!(!p.is_cut(B, A), "the reverse direction is independent");
        assert!(!p.mutually_reachable(A, B));
        assert!(p.mutually_reachable(B, C));
    }

    #[test]
    fn cut_and_restore_are_idempotent() {
        let mut p = PartitionModel::new(2);
        assert!(p.cut(A, B));
        assert!(!p.cut(A, B), "second cut is a no-op");
        assert_eq!(p.cut_links(), 1);
        assert!(p.restore(A, B));
        assert!(!p.restore(A, B), "second restore is a no-op");
        assert!(!p.any_cut());
    }

    #[test]
    fn group_split_decomposes_into_pairwise_cuts() {
        let mut p = PartitionModel::new(3);
        let newly = p.cut_groups(&[0, 0, 1]);
        // {0,1} | {2}: four directed cross-group links.
        assert_eq!(
            newly,
            vec![(A, C), (B, C), (C, A), (C, B)],
            "pairs in deterministic index order"
        );
        assert_eq!(p.cut_links(), 4);
        assert!(p.mutually_reachable(A, B));
        assert!(!p.is_cut(A, B) && p.is_cut(A, C));
    }

    #[test]
    fn overlapping_episodes_compose() {
        // Episode 1: {0,1} | {2}.  Episode 2: {0} | {1,2}.  The second must
        // not erase the first: after it lands, only 0↔1 links are newly cut
        // and the union of both splits is in force.
        let mut p = PartitionModel::new(3);
        p.cut_groups(&[0, 0, 1]);
        let newly = p.cut_groups(&[0, 1, 1]);
        // (A,C)/(C,A) were already severed by episode 1, so only the 0↔1
        // links count as new — notices must not be injected twice.
        assert_eq!(newly, vec![(A, B), (B, A)]);
        assert_eq!(p.cut_links(), 6, "every ordered pair is now severed");
        // Restoring one episode's links leaves the other's cuts intact.
        p.restore(A, C);
        p.restore(C, A);
        assert!(p.is_cut(B, C) && p.is_cut(A, B));
        p.restore_all();
        assert!(!p.any_cut());
    }
}
