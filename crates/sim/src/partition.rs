//! Directed link-level reachability: which ordered site pairs can talk.
//!
//! The paper's §6 failure model treats a partition as indistinguishable
//! from the remote sites crashing, but says nothing about *asymmetric*
//! splits — A hears B while B does not hear A — even though those are what
//! real networks produce (half-open TCP connections, one-way firewall
//! rules, congested return paths). [`PartitionModel`] therefore tracks the
//! network's reachability at the finest grain that matters to a
//! message-passing protocol: one boolean per **ordered** pair of sites.
//!
//! Partition *episodes* compose: cutting `{0,1} | {2}` and later also
//! `{0} | {1,2}` leaves the union of both cuts in place, and restoring one
//! link does not resurrect the other. The legacy symmetric group-split API
//! ([`crate::Simulator::schedule_partition`]) decomposes into pairwise
//! cuts on this model, so overlapping and repeated partitions now behave
//! additively instead of silently overwriting each other.

use std::collections::BTreeSet;

use qmx_core::SiteId;

/// Largest site count that keeps the dense `n × n` boolean matrix: 2048²
/// = 4 MB. Beyond it (the large-N engine's territory) cut links live in
/// a sorted set instead — cut sets are tiny relative to `n²`, and the
/// `active == 0` short-circuit keeps the fully-connected hot path free
/// in both representations.
const DENSE_SITES_MAX: usize = 2048;

/// Link-cut storage: dense matrix for small systems, sparse sorted set
/// (deterministic iteration and `Debug`) for large ones.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CutSet {
    /// Flat `n * n` matrix indexed `src * n + dst`; `true` = cut.
    Dense(Vec<bool>),
    /// Set of `src * n + dst` keys of cut links.
    Sparse(BTreeSet<u64>),
}

/// Per-ordered-pair link state for `n` sites: `cut(src, dst)` means
/// messages from `src` to `dst` are dropped, while `dst → src` traffic is
/// governed independently — the representation of an asymmetric partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionModel {
    n: usize,
    cut: CutSet,
    /// Number of cut links, so the hot-path reachability check can
    /// short-circuit to "fully connected" without touching the storage.
    active: usize,
}

impl PartitionModel {
    /// A fully connected network over `n` sites.
    pub fn new(n: usize) -> Self {
        let cut = if n <= DENSE_SITES_MAX {
            CutSet::Dense(vec![false; n * n])
        } else {
            CutSet::Sparse(BTreeSet::new())
        };
        PartitionModel { n, cut, active: 0 }
    }

    #[inline]
    fn key(&self, src: SiteId, dst: SiteId) -> u64 {
        src.index() as u64 * self.n as u64 + dst.index() as u64
    }

    /// Number of sites.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the directed link `src → dst` is currently cut.
    #[inline]
    pub fn is_cut(&self, src: SiteId, dst: SiteId) -> bool {
        self.active != 0
            && match &self.cut {
                CutSet::Dense(m) => m[src.index() * self.n + dst.index()],
                CutSet::Sparse(s) => s.contains(&self.key(src, dst)),
            }
    }

    /// Whether any link is currently cut.
    pub fn any_cut(&self) -> bool {
        self.active != 0
    }

    /// Number of directed links currently cut.
    pub fn cut_links(&self) -> usize {
        self.active
    }

    /// Cuts the directed link `src → dst`. Returns `true` if the link was
    /// previously alive (idempotent: re-cutting an already-cut link is a
    /// no-op and returns `false`).
    pub fn cut(&mut self, src: SiteId, dst: SiteId) -> bool {
        let key = self.key(src, dst);
        let newly = match &mut self.cut {
            CutSet::Dense(m) => {
                let slot = &mut m[key as usize];
                let newly = !*slot;
                *slot = true;
                newly
            }
            CutSet::Sparse(s) => s.insert(key),
        };
        if newly {
            self.active += 1;
        }
        newly
    }

    /// Restores the directed link `src → dst`. Returns `true` if the link
    /// was previously cut.
    pub fn restore(&mut self, src: SiteId, dst: SiteId) -> bool {
        let key = self.key(src, dst);
        let was = match &mut self.cut {
            CutSet::Dense(m) => {
                let slot = &mut m[key as usize];
                let was = *slot;
                *slot = false;
                was
            }
            CutSet::Sparse(s) => s.remove(&key),
        };
        if was {
            self.active -= 1;
        }
        was
    }

    /// Cuts both directions between every cross-group pair of the symmetric
    /// split described by `groups` (`groups[i]` = group id of site `i`),
    /// i.e. the legacy `schedule_partition` semantics expressed as pairwise
    /// cuts. Links already cut stay cut. Returns the ordered pairs that
    /// were *newly* severed, in `(src, dst)` index order — the caller uses
    /// them to inject oracle failure notices exactly once per pair.
    ///
    /// # Panics
    ///
    /// Panics if `groups.len() != n`.
    pub fn cut_groups(&mut self, groups: &[u32]) -> Vec<(SiteId, SiteId)> {
        assert_eq!(groups.len(), self.n, "one group per site");
        let mut newly = Vec::new();
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j && groups[i] != groups[j] {
                    let (src, dst) = (SiteId(i as u32), SiteId(j as u32));
                    if self.cut(src, dst) {
                        newly.push((src, dst));
                    }
                }
            }
        }
        newly
    }

    /// Restores every cut link (the legacy `schedule_heal` semantics).
    pub fn restore_all(&mut self) {
        match &mut self.cut {
            CutSet::Dense(m) => m.fill(false),
            CutSet::Sparse(s) => s.clear(),
        }
        self.active = 0;
    }

    /// Whether `src` and `dst` are mutually reachable (both directions
    /// alive). Used by availability analyses: a quorum is usable only when
    /// all its members can complete request/reply round trips.
    pub fn mutually_reachable(&self, src: SiteId, dst: SiteId) -> bool {
        !self.is_cut(src, dst) && !self.is_cut(dst, src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: SiteId = SiteId(0);
    const B: SiteId = SiteId(1);
    const C: SiteId = SiteId(2);

    #[test]
    fn cuts_are_directed() {
        let mut p = PartitionModel::new(3);
        assert!(!p.any_cut());
        assert!(p.cut(A, B));
        assert!(p.is_cut(A, B));
        assert!(!p.is_cut(B, A), "the reverse direction is independent");
        assert!(!p.mutually_reachable(A, B));
        assert!(p.mutually_reachable(B, C));
    }

    #[test]
    fn cut_and_restore_are_idempotent() {
        let mut p = PartitionModel::new(2);
        assert!(p.cut(A, B));
        assert!(!p.cut(A, B), "second cut is a no-op");
        assert_eq!(p.cut_links(), 1);
        assert!(p.restore(A, B));
        assert!(!p.restore(A, B), "second restore is a no-op");
        assert!(!p.any_cut());
    }

    #[test]
    fn group_split_decomposes_into_pairwise_cuts() {
        let mut p = PartitionModel::new(3);
        let newly = p.cut_groups(&[0, 0, 1]);
        // {0,1} | {2}: four directed cross-group links.
        assert_eq!(
            newly,
            vec![(A, C), (B, C), (C, A), (C, B)],
            "pairs in deterministic index order"
        );
        assert_eq!(p.cut_links(), 4);
        assert!(p.mutually_reachable(A, B));
        assert!(!p.is_cut(A, B) && p.is_cut(A, C));
    }

    #[test]
    fn sparse_representation_matches_dense_semantics() {
        // Past the dense threshold the cut set switches to the sorted-set
        // representation; the API must behave identically.
        let n = DENSE_SITES_MAX + 1;
        let mut p = PartitionModel::new(n);
        assert!(matches!(p.cut, CutSet::Sparse(_)));
        let far = SiteId(n as u32 - 1);
        assert!(p.cut(A, far));
        assert!(!p.cut(A, far), "second cut is a no-op");
        assert!(p.is_cut(A, far));
        assert!(!p.is_cut(far, A), "directions stay independent");
        assert!(!p.mutually_reachable(A, far));
        assert!(p.restore(A, far));
        assert!(!p.restore(A, far));
        assert!(!p.any_cut());
        p.cut(A, B);
        p.restore_all();
        assert!(!p.is_cut(A, B));
    }

    #[test]
    fn overlapping_episodes_compose() {
        // Episode 1: {0,1} | {2}.  Episode 2: {0} | {1,2}.  The second must
        // not erase the first: after it lands, only 0↔1 links are newly cut
        // and the union of both splits is in force.
        let mut p = PartitionModel::new(3);
        p.cut_groups(&[0, 0, 1]);
        let newly = p.cut_groups(&[0, 1, 1]);
        // (A,C)/(C,A) were already severed by episode 1, so only the 0↔1
        // links count as new — notices must not be injected twice.
        assert_eq!(newly, vec![(A, B), (B, A)]);
        assert_eq!(p.cut_links(), 6, "every ordered pair is now severed");
        // Restoring one episode's links leaves the other's cuts intact.
        p.restore(A, C);
        p.restore(C, A);
        assert!(p.is_cut(B, C) && p.is_cut(A, B));
        p.restore_all();
        assert!(!p.any_cut());
    }
}
