//! Measurement collection: message counts and per-CS timing records.

use qmx_core::{AbortCounters, DetectorCounters, MsgKind, ResourceId, SiteId, TransportCounters};
use std::collections::BTreeMap;

/// Timing record of one completed critical-section execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsRecord {
    /// The executing site.
    pub site: SiteId,
    /// The resource whose CS was executed ([`ResourceId::SOLO`] for
    /// single-lock runs).
    pub resource: ResourceId,
    /// Virtual time the application issued the request.
    pub requested_at: u64,
    /// Virtual time the site entered the CS.
    pub entered_at: u64,
    /// Virtual time the site exited the CS.
    pub exited_at: u64,
}

impl CsRecord {
    /// Response time: request to CS *exit* — the paper's definition, whose
    /// light-load value is `2T + E` (§5.1).
    pub fn response_time(&self) -> u64 {
        self.exited_at - self.requested_at
    }

    /// Waiting time: request to CS *entry* (time spent blocked).
    pub fn waiting_time(&self) -> u64 {
        self.entered_at - self.requested_at
    }
}

/// Aggregated measurements from one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    msg_counts: BTreeMap<MsgKind, u64>,
    records: Vec<CsRecord>,
    dropped_to_crashed: u64,
    dropped_by_partition: u64,
    injected_drops: u64,
    injected_dups: u64,
    transport: TransportCounters,
    detector: DetectorCounters,
    aborts: AbortCounters,
    retries: u64,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sent wire message.
    pub fn count_msg(&mut self, kind: MsgKind) {
        *self.msg_counts.entry(kind).or_insert(0) += 1;
    }

    /// Records a message dropped because its target crashed.
    pub fn count_dropped(&mut self) {
        self.dropped_to_crashed += 1;
    }

    /// Records a message dropped because its directed link was cut by a
    /// partition.
    pub fn count_partition_dropped(&mut self) {
        self.dropped_by_partition += 1;
    }

    /// Records a message lost to the injected fault model.
    pub fn count_injected_drop(&mut self) {
        self.injected_drops += 1;
    }

    /// Records a message duplicated by the injected fault model.
    pub fn count_injected_dup(&mut self) {
        self.injected_dups += 1;
    }

    /// Overwrites the aggregated transport-layer counters (summed over all
    /// sites by the simulator at the end of a run).
    pub fn set_transport_totals(&mut self, totals: TransportCounters) {
        self.transport = totals;
    }

    /// Messages the fault model dropped.
    pub fn injected_drops(&self) -> u64 {
        self.injected_drops
    }

    /// Messages the fault model duplicated.
    pub fn injected_dups(&self) -> u64 {
        self.injected_dups
    }

    /// Aggregated reliable-transport counters (all zero when the protocols
    /// run bare, without the transport wrapper).
    pub fn transport(&self) -> &TransportCounters {
        &self.transport
    }

    /// Overwrites the aggregated failure-detector counters (summed over all
    /// sites by the simulator at the end of a run).
    pub fn set_detector_totals(&mut self, totals: DetectorCounters) {
        self.detector = totals;
    }

    /// Aggregated failure-detector counters (all zero when the protocols
    /// run bare, without the detector wrapper).
    pub fn detector(&self) -> &DetectorCounters {
        &self.detector
    }

    /// Overwrites the aggregated request-abort counters (summed over all
    /// sites by the simulator at the end of a run).
    pub fn set_abort_totals(&mut self, totals: AbortCounters) {
        self.aborts = totals;
    }

    /// Aggregated request-abort counters — aborts, deadline misses, and
    /// orphan grants returned after a withdrawal (all zero for protocols
    /// without abort support).
    pub fn aborts(&self) -> &AbortCounters {
        &self.aborts
    }

    /// Records one closed-loop client retry of an aborted request.
    pub fn count_retry(&mut self) {
        self.retries += 1;
    }

    /// Aborted requests the closed-loop client re-issued.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Records a completed CS execution.
    pub fn record_cs(&mut self, rec: CsRecord) {
        self.records.push(rec);
    }

    /// Total wire messages sent.
    pub fn total_messages(&self) -> u64 {
        self.msg_counts.values().sum()
    }

    /// Messages sent, by kind.
    pub fn messages_by_kind(&self) -> &BTreeMap<MsgKind, u64> {
        &self.msg_counts
    }

    /// Messages of one kind.
    pub fn messages_of(&self, kind: MsgKind) -> u64 {
        self.msg_counts.get(&kind).copied().unwrap_or(0)
    }

    /// Messages dropped en route to crashed sites.
    pub fn dropped_to_crashed(&self) -> u64 {
        self.dropped_to_crashed
    }

    /// Messages dropped on partition-cut links (at send or delivery time).
    pub fn dropped_by_partition(&self) -> u64 {
        self.dropped_by_partition
    }

    /// Number of completed CS executions.
    pub fn completed_cs(&self) -> usize {
        self.records.len()
    }

    /// All completed-CS records, in completion order.
    pub fn records(&self) -> &[CsRecord] {
        &self.records
    }

    /// Average wire messages per completed CS execution — the paper's
    /// message complexity measure. `None` if no CS completed.
    pub fn messages_per_cs(&self) -> Option<f64> {
        (!self.records.is_empty()).then(|| self.total_messages() as f64 / self.records.len() as f64)
    }

    /// Synchronization delay samples: for each consecutive pair of CS
    /// executions (ordered by entry time) where the successor was already
    /// waiting when the predecessor exited, the gap `enterₙ₊₁ − exitₙ`.
    ///
    /// This matches the paper's definition — "the time required after a
    /// site exits the CS and before the next site enters the CS" — which is
    /// only meaningful under contention (§5.1 notes it is meaningless at
    /// light load, where the gap is dominated by request arrival).
    ///
    /// In a multi-resource run each resource is an independent CS instance,
    /// so gaps are measured *within* a resource's execution sequence;
    /// samples are concatenated in resource-id order. Single-resource runs
    /// (everything on [`ResourceId::SOLO`]) are one group, exactly as
    /// before.
    pub fn sync_delays(&self) -> Vec<u64> {
        let mut by_resource: BTreeMap<ResourceId, Vec<&CsRecord>> = BTreeMap::new();
        for r in &self.records {
            by_resource.entry(r.resource).or_default().push(r);
        }
        let mut out = Vec::new();
        for (_, mut ordered) in by_resource {
            ordered.sort_by_key(|r| r.entered_at);
            out.extend(
                ordered
                    .windows(2)
                    .filter(|w| w[1].requested_at <= w[0].exited_at)
                    .map(|w| w[1].entered_at.saturating_sub(w[0].exited_at)),
            );
        }
        out
    }

    /// Mean of [`Metrics::sync_delays`], if any sample exists.
    pub fn mean_sync_delay(&self) -> Option<f64> {
        let d = self.sync_delays();
        (!d.is_empty()).then(|| d.iter().sum::<u64>() as f64 / d.len() as f64)
    }

    /// Mean response time over completed CS executions.
    pub fn mean_response_time(&self) -> Option<f64> {
        (!self.records.is_empty()).then(|| {
            self.records.iter().map(|r| r.response_time()).sum::<u64>() as f64
                / self.records.len() as f64
        })
    }

    /// Throughput: completed CS executions per tick over `[0, horizon]`.
    pub fn throughput(&self, horizon: u64) -> f64 {
        assert!(horizon > 0, "horizon must be positive");
        self.records.len() as f64 / horizon as f64
    }

    /// Per-site completed-CS counts (fairness analysis).
    pub fn per_site_counts(&self) -> BTreeMap<SiteId, usize> {
        let mut m = BTreeMap::new();
        for r in &self.records {
            *m.entry(r.site).or_insert(0) += 1;
        }
        m
    }

    /// Per-resource completed-CS counts (multi-resource fairness analysis;
    /// a single entry keyed [`ResourceId::SOLO`] for single-lock runs).
    pub fn per_resource_counts(&self) -> BTreeMap<ResourceId, usize> {
        let mut m = BTreeMap::new();
        for r in &self.records {
            *m.entry(r.resource).or_insert(0) += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(site: u32, req: u64, enter: u64, exit: u64) -> CsRecord {
        CsRecord {
            site: SiteId(site),
            resource: ResourceId::SOLO,
            requested_at: req,
            entered_at: enter,
            exited_at: exit,
        }
    }

    fn rec_r(site: u32, resource: u32, req: u64, enter: u64, exit: u64) -> CsRecord {
        CsRecord {
            resource: ResourceId(resource),
            ..rec(site, req, enter, exit)
        }
    }

    #[test]
    fn counts_accumulate() {
        let mut m = Metrics::new();
        m.count_msg(MsgKind::Request);
        m.count_msg(MsgKind::Request);
        m.count_msg(MsgKind::Reply);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.messages_of(MsgKind::Request), 2);
        assert_eq!(m.messages_of(MsgKind::Token), 0);
    }

    #[test]
    fn loss_and_transport_counters() {
        let mut m = Metrics::new();
        m.count_injected_drop();
        m.count_injected_drop();
        m.count_injected_dup();
        assert_eq!(m.injected_drops(), 2);
        assert_eq!(m.injected_dups(), 1);
        assert_eq!(m.transport().retransmissions, 0);
        m.set_transport_totals(TransportCounters {
            retransmissions: 5,
            duplicates_dropped: 3,
            ..TransportCounters::default()
        });
        // Overwrite semantics: a second snapshot replaces the first.
        m.set_transport_totals(TransportCounters {
            retransmissions: 7,
            ..TransportCounters::default()
        });
        assert_eq!(m.transport().retransmissions, 7);
        assert_eq!(m.transport().duplicates_dropped, 0);
    }

    #[test]
    fn detector_counters_overwrite() {
        let mut m = Metrics::new();
        assert_eq!(m.detector().suspicions, 0);
        m.set_detector_totals(DetectorCounters {
            suspicions: 4,
            false_suspicions: 1,
            ..DetectorCounters::default()
        });
        m.set_detector_totals(DetectorCounters {
            suspicions: 6,
            ..DetectorCounters::default()
        });
        assert_eq!(m.detector().suspicions, 6);
        assert_eq!(m.detector().false_suspicions, 0);
    }

    #[test]
    fn messages_per_cs() {
        let mut m = Metrics::new();
        assert_eq!(m.messages_per_cs(), None);
        for _ in 0..6 {
            m.count_msg(MsgKind::Reply);
        }
        m.record_cs(rec(0, 0, 10, 20));
        m.record_cs(rec(1, 0, 30, 40));
        assert_eq!(m.messages_per_cs(), Some(3.0));
    }

    #[test]
    fn sync_delay_only_counts_contended_gaps() {
        let mut m = Metrics::new();
        // Second request arrived while first held the CS: contended.
        m.record_cs(rec(0, 0, 10, 20));
        m.record_cs(rec(1, 15, 21, 30));
        // Third request arrived long after second exited: uncontended.
        m.record_cs(rec(2, 99, 101, 110));
        assert_eq!(m.sync_delays(), vec![1]);
        assert_eq!(m.mean_sync_delay(), Some(1.0));
    }

    #[test]
    fn response_times_and_throughput() {
        let mut m = Metrics::new();
        m.record_cs(rec(0, 0, 10, 20));
        m.record_cs(rec(1, 5, 25, 35));
        assert_eq!(m.mean_response_time(), Some(25.0)); // request -> exit
        assert_eq!(m.throughput(100), 0.02);
        assert_eq!(m.records()[0].waiting_time(), 10); // request -> entry
    }

    #[test]
    fn per_site_counts() {
        let mut m = Metrics::new();
        m.record_cs(rec(0, 0, 1, 2));
        m.record_cs(rec(0, 3, 4, 5));
        m.record_cs(rec(2, 3, 6, 7));
        let c = m.per_site_counts();
        assert_eq!(c[&SiteId(0)], 2);
        assert_eq!(c[&SiteId(2)], 1);
        assert!(!c.contains_key(&SiteId(1)));
    }

    #[test]
    fn sync_delays_sorted_by_entry_not_insertion() {
        let mut m = Metrics::new();
        m.record_cs(rec(1, 15, 21, 30)); // completes second
        m.record_cs(rec(0, 0, 10, 20)); // completes first
        assert_eq!(m.sync_delays(), vec![1]);
    }

    #[test]
    fn sync_delays_group_per_resource() {
        let mut m = Metrics::new();
        // Resource 1: contended handover with gap 1. Resource 2: its
        // entries interleave in time with resource 1's but belong to an
        // independent lock — no cross-resource gap is ever measured.
        m.record_cs(rec_r(0, 1, 0, 10, 20));
        m.record_cs(rec_r(2, 2, 0, 12, 22));
        m.record_cs(rec_r(1, 1, 15, 21, 30));
        m.record_cs(rec_r(3, 2, 5, 25, 33));
        assert_eq!(m.sync_delays(), vec![1, 3]);
    }

    #[test]
    fn per_resource_counts() {
        let mut m = Metrics::new();
        m.record_cs(rec_r(0, 1, 0, 1, 2));
        m.record_cs(rec_r(1, 1, 3, 4, 5));
        m.record_cs(rec_r(0, 5, 3, 6, 7));
        let c = m.per_resource_counts();
        assert_eq!(c[&ResourceId(1)], 2);
        assert_eq!(c[&ResourceId(5)], 1);
        assert!(!c.contains_key(&ResourceId::SOLO));
    }
}
