//! # qmx-sim
//!
//! A deterministic discrete-event simulator for message-passing mutual
//! exclusion protocols.
//!
//! The simulator owns `N` protocol state machines (anything implementing
//! [`qmx_core::Protocol`]), a virtual clock, and a network with per-link
//! FIFO delivery and configurable delay distributions ([`DelayModel`]). It
//! drives the application side too: CS requests are injected at scheduled
//! times and each granted CS is held for a sampled duration before the
//! simulator calls `release_cs`.
//!
//! Everything is seeded and deterministic: the same
//! ([`SimConfig`], schedule) pair replays the identical execution, which the
//! test suite exploits for trace-equality determinism checks.
//!
//! The paper's two performance measures fall directly out of the collected
//! [`Metrics`]:
//!
//! * **message complexity** — wire messages counted by
//!   [`qmx_core::MsgKind`] at send time, divided by completed CS executions;
//! * **synchronization delay** — virtual time between one site's CS exit
//!   and the next site's CS entry, in units of the mean message delay `T`.
//!
//! Fault injection: [`Simulator::schedule_crash`] silences a site at a
//! virtual time; in-flight messages to it are dropped and, after the
//! configured detection delay, every live site receives
//! [`qmx_core::Protocol::on_site_failure`] — the paper's §6 `failure(i)`
//! notice. Set [`SimConfig::oracle_notices`] to `false` to retire that
//! oracle entirely: sites wrapped in [`qmx_core::Detector`] then learn of
//! failures only from missed heartbeats (which are real simulated messages,
//! subject to the same loss/outage faults), and
//! [`Simulator::schedule_recovery`] restarts a crashed site with fresh
//! state so it rejoins through the detector's handshake.
//!
//! Partitions are modeled at directed-link grain ([`PartitionModel`]):
//! [`Simulator::schedule_cut`] severs one ordered pair (the asymmetric
//! case where A hears B but B does not hear A),
//! [`Simulator::schedule_restore`] heals it, and the symmetric group-split
//! API [`Simulator::schedule_partition`] decomposes into pairwise cuts so
//! overlapping episodes compose instead of overwriting each other.
//!
//! ```
//! use qmx_core::{Config, DelayOptimal, SiteId};
//! use qmx_sim::{SimConfig, Simulator};
//!
//! // Three sites, everyone's quorum is {0,1,2}.
//! let quorum: Vec<SiteId> = (0..3).map(SiteId).collect();
//! let mut sim = Simulator::new(
//!     (0..3)
//!         .map(|i| DelayOptimal::new(SiteId(i), quorum.clone(), Config::default()))
//!         .collect(),
//!     SimConfig::default(),
//! );
//! sim.schedule_request(SiteId(0), 0);
//! sim.schedule_request(SiteId(1), 10);
//! sim.run_to_quiescence(1_000_000);
//! assert_eq!(sim.metrics().completed_cs(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod delay;
pub mod metrics;
pub mod partition;
pub mod sim;
mod sites;
pub mod timer_wheel;
pub mod trace;

pub use calendar::{CalendarScheduler, EventQueue, HeapScheduler, Scheduler, SchedulerKind, Timed};
pub use delay::DelayModel;
pub use metrics::{CsRecord, Metrics};
pub use partition::PartitionModel;
pub use sim::{RetryPolicy, SimConfig, Simulator};
pub use timer_wheel::WheelScheduler;
pub use trace::{Trace, TraceEvent};

// Fault-injection vocabulary (defined in `qmx-core` so the threaded
// runtime shares the exact same models): re-exported for convenience.
pub use qmx_core::{LossModel, Outage};
