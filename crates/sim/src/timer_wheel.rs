//! Hierarchical timer wheel: the large-N event scheduler.
//!
//! The third [`Scheduler`] implementation, selected by
//! [`SchedulerKind::Wheel`](crate::SchedulerKind). The calendar queue's
//! pop scans a whole day bucket (and a whole lap when sparse); at
//! N = 10⁵ sites the future-event set holds hundreds of thousands of
//! detector heartbeat/lease ticks and request deadlines, and those scans
//! are the top profile line. The wheel replaces them with bitmap
//! arithmetic: each of `LEVELS` levels holds `SLOTS` slots of width
//! `SLOTS^level` ticks, a `u64` occupancy bitmap per level turns
//! "earliest non-empty slot" into one `trailing_zeros`, and a pop either
//! reads a level-0 slot (whose items all share one exact time — only the
//! `seq` tie-break needs a scan) or cascades one higher-level slot down.
//! Every item cascades at most `LEVELS` times over its lifetime, so
//! push and pop are O(1) amortized with no per-pop lap scans.
//!
//! **Determinism contract** (same as the calendar): pops return the
//! exact minimum by `(time, seq)`, so replays are byte-identical across
//! heap, calendar, and wheel scheduling. Slot coordinates are absolute
//! (`(time >> 6·level) & 63`), derived only from item times and the
//! monotone pop cursor — never from wall-clock state.
//!
//! Items beyond the wheel horizon (a different `SLOTS^LEVELS`-tick
//! block than the cursor's) wait in an *overflow* min-heap and migrate
//! into the wheel when the cursor's block reaches them; items pushed
//! behind the cursor (the simulator never does, but the scheduler
//! contract tolerates it) wait in a *past* min-heap that pops first.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::calendar::{Scheduler, Timed};

/// Bits per level: each level has `2^SLOT_BITS` slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels. Level `l` slots are `64^l` ticks wide, so the
/// wheel spans `64^LEVELS = 2^30 ≈ 1.07e9` ticks — comfortably past the
/// largest in-repo delay scripts (1e8-tick detection windows) before the
/// overflow heap is involved at all.
const LEVELS: usize = 5;
/// Chain terminator / empty slot marker (shared arena idiom with the
/// calendar queue).
const NONE: u32 = u32::MAX;

/// Index of the wheel level an item at `time` belongs to, given the
/// current cursor: the lowest level whose slot coordinate still
/// distinguishes `time` from `base`. `LEVELS` means "outside the
/// cursor's top-level block" (overflow).
#[inline]
fn level_of(time: u64, base: u64) -> usize {
    let xor = time ^ base;
    if xor == 0 {
        return 0;
    }
    ((63 - xor.leading_zeros()) / SLOT_BITS) as usize
}

/// Absolute slot coordinate of `time` at `level`.
#[inline]
fn slot_of(time: u64, level: usize) -> usize {
    ((time >> (SLOT_BITS * level as u32)) as usize) & (SLOTS - 1)
}

/// The hierarchical timer-wheel scheduler.
///
/// Storage is the same slot arena as
/// [`CalendarScheduler`](crate::CalendarScheduler): items live in one flat `slots` array,
/// each (level, slot) pair heads an intrusive singly linked chain
/// through the parallel `next` array, and freed indices recycle through
/// a free list — steady state allocates nothing.
///
/// Invariants (all consequences of "the cursor never passes the minimum
/// wheel item"):
///
/// * every wheel item's time is `≥ base` and shares `base`'s top-level
///   block, so occupied slots are never *behind* the per-level cursor
///   coordinate and `trailing_zeros` of the raw bitmap finds the
///   earliest slot without masking;
/// * a level-0 slot holds items of exactly one time, so the in-slot
///   scan only minimizes `seq`;
/// * overflow items are in a *later* top-level block than every wheel
///   item, and past items are strictly *earlier* than everything else,
///   so the three stores never need cross-comparison at pop time.
#[derive(Debug)]
pub struct WheelScheduler<T> {
    /// Chain head per (level, slot), flattened: `heads[level * SLOTS + slot]`.
    heads: Vec<u32>,
    /// One occupancy bitmap per level; bit `s` set iff slot `s` has a chain.
    occ: [u64; LEVELS],
    /// Next slot index in the chain, parallel to `slots`.
    next: Vec<u32>,
    /// The arena. `None` slots are on the free list.
    slots: Vec<Option<T>>,
    /// Recycled arena indices.
    free: Vec<u32>,
    /// Scratch for cascades (reused, so cascades allocate only on growth).
    cascade_buf: Vec<u32>,
    /// Pop cursor: the last popped time (never decreases). Every wheel
    /// item's time is `≥ base` and in `base`'s top-level block.
    base: u64,
    /// Items in the wheel proper.
    wheel_len: usize,
    /// Items beyond the wheel horizon, ordered by the item `Ord`.
    overflow: BinaryHeap<Reverse<T>>,
    /// Items pushed behind the cursor, ordered by the item `Ord`.
    past: BinaryHeap<Reverse<T>>,
}

impl<T: Timed + Ord> WheelScheduler<T> {
    /// Creates an empty wheel with arena room for `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        WheelScheduler {
            heads: vec![NONE; LEVELS * SLOTS],
            occ: [0; LEVELS],
            next: Vec::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            cascade_buf: Vec::new(),
            base: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            past: BinaryHeap::new(),
        }
    }

    /// Allocates an arena slot for `item` and returns its index.
    #[inline]
    fn alloc(&mut self, item: T) -> u32 {
        match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(item);
                s
            }
            None => {
                self.slots.push(Some(item));
                self.next.push(NONE);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Links arena index `idx` (holding an item at `time`) into its
    /// wheel chain. Caller guarantees `time ≥ base` and same top block.
    #[inline]
    fn link(&mut self, idx: u32, time: u64) {
        let level = level_of(time, self.base);
        debug_assert!(level < LEVELS, "linked item is within the wheel span");
        let slot = slot_of(time, level);
        let h = level * SLOTS + slot;
        self.next[idx as usize] = self.heads[h];
        self.heads[h] = idx;
        self.occ[level] |= 1 << slot;
        self.wheel_len += 1;
    }

    /// Whether `time` falls in the cursor's top-level block (i.e. the
    /// wheel proper can hold it).
    #[inline]
    fn in_span(&self, time: u64) -> bool {
        (time >> (SLOT_BITS * LEVELS as u32)) == (self.base >> (SLOT_BITS * LEVELS as u32))
    }

    /// Moves every overflow item that now fits the cursor's top-level
    /// block into the wheel.
    fn drain_overflow(&mut self) {
        while let Some(Reverse(head)) = self.overflow.peek() {
            if !self.in_span(head.time()) {
                break;
            }
            let Reverse(item) = self.overflow.pop().expect("peeked overflow item");
            let time = item.time();
            let idx = self.alloc(item);
            self.link(idx, time);
        }
    }

    /// Unlinks the chain at `(level, slot)` and relinks each item at its
    /// new (lower) level after the cursor advanced into that slot's range.
    fn cascade(&mut self, level: usize, slot: usize) {
        let h = level * SLOTS + slot;
        let mut idx = self.heads[h];
        self.heads[h] = NONE;
        self.occ[level] &= !(1 << slot);
        self.cascade_buf.clear();
        while idx != NONE {
            self.cascade_buf.push(idx);
            idx = self.next[idx as usize];
        }
        self.wheel_len -= self.cascade_buf.len();
        // Relink by rewiring `next` pointers only; payloads never move.
        let mut buf = std::mem::take(&mut self.cascade_buf);
        for &i in &buf {
            let time = self.slots[i as usize]
                .as_ref()
                .expect("linked slot is occupied")
                .time();
            debug_assert!(
                level_of(time, self.base) < level,
                "cascade moves items down"
            );
            self.link(i, time);
        }
        buf.clear();
        self.cascade_buf = buf;
    }

    /// Pops the minimum-`seq` item from the level-0 slot `slot` (all its
    /// items share one exact time).
    fn pop_level0(&mut self, slot: usize) -> T {
        let h = slot;
        let mut best = NONE;
        let mut best_prev = NONE;
        let mut best_seq = u64::MAX;
        let mut prev = NONE;
        let mut idx = self.heads[h];
        while idx != NONE {
            let seq = self.slots[idx as usize]
                .as_ref()
                .expect("linked slot is occupied")
                .seq();
            if seq < best_seq {
                best_seq = seq;
                best = idx;
                best_prev = prev;
            }
            prev = idx;
            idx = self.next[idx as usize];
        }
        let after = self.next[best as usize];
        if best_prev == NONE {
            self.heads[h] = after;
        } else {
            self.next[best_prev as usize] = after;
        }
        if self.heads[h] == NONE {
            self.occ[0] &= !(1 << slot);
        }
        self.free.push(best);
        self.wheel_len -= 1;
        let item = self.slots[best as usize]
            .take()
            .expect("linked slot is occupied");
        self.base = item.time();
        item
    }
}

impl<T: Timed + Ord> Scheduler<T> for WheelScheduler<T> {
    fn push(&mut self, item: T) {
        let time = item.time();
        if time < self.base {
            self.past.push(Reverse(item));
        } else if !self.in_span(time) {
            self.overflow.push(Reverse(item));
        } else {
            let idx = self.alloc(item);
            self.link(idx, time);
        }
    }

    fn pop(&mut self) -> Option<T> {
        // Past items are strictly earlier than everything in the wheel
        // and the overflow (they were behind the cursor when pushed, and
        // the cursor never decreases), so they drain first — without
        // moving the cursor backwards.
        if let Some(Reverse(item)) = self.past.pop() {
            return Some(item);
        }
        loop {
            if self.wheel_len == 0 {
                // Wheel exhausted: jump the cursor to the overflow
                // minimum's block and migrate what now fits.
                let Reverse(head) = self.overflow.peek()?;
                self.base = head.time();
                self.drain_overflow();
                continue;
            }
            // Lowest non-empty level; its earliest occupied slot holds
            // (or leads to, via cascade) the global minimum: lower
            // levels are empty and everything at this level or above
            // sits at a later absolute coordinate.
            let level = self
                .occ
                .iter()
                .position(|&b| b != 0)
                .expect("wheel_len > 0 implies an occupied level");
            let slot = self.occ[level].trailing_zeros() as usize;
            if level == 0 {
                return Some(self.pop_level0(slot));
            }
            // Advance the cursor to the slot's range start, then spill
            // its chain into lower levels and retry.
            let width = SLOT_BITS * level as u32;
            let block = SLOT_BITS * (level + 1) as u32;
            self.base = ((self.base >> block) << block) | ((slot as u64) << width);
            self.cascade(level, slot);
        }
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len() + self.past.len()
    }

    fn bulk_load(&mut self, items: Vec<T>) {
        // Insert order fixes the arena layout but not the pop order
        // (level-0 scans minimize `seq` explicitly), so a plain loop is
        // already byte-equivalent to sequential pushes — and each insert
        // is O(1), so there is no heapify-style batch win to chase.
        for item in items {
            self.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::{CalendarScheduler, HeapScheduler};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Item {
        time: u64,
        seq: u64,
    }

    impl Timed for Item {
        fn time(&self) -> u64 {
            self.time
        }
        fn seq(&self) -> u64 {
            self.seq
        }
    }

    fn drain<S: Scheduler<Item>>(q: &mut S) -> Vec<Item> {
        let mut out = Vec::new();
        while let Some(it) = q.pop() {
            out.push(it);
        }
        out
    }

    #[test]
    fn wheel_drains_in_time_seq_order() {
        let mut q = WheelScheduler::with_capacity(8);
        for (time, seq) in [(500, 1), (500, 2), (3, 3), (70_000, 4), (1024, 5), (500, 6)] {
            q.push(Item { time, seq });
        }
        let order: Vec<(u64, u64)> = drain(&mut q).iter().map(|i| (i.time, i.seq)).collect();
        assert_eq!(
            order,
            vec![(3, 3), (500, 1), (500, 2), (500, 6), (1024, 5), (70_000, 4)]
        );
    }

    /// Three-way differential under the simulator-shaped workload: the
    /// wheel must emit the byte-identical pop sequence as the reference
    /// heap and the calendar queue.
    #[test]
    fn wheel_matches_heap_and_calendar_differentially() {
        let mut rng = StdRng::seed_from_u64(0xCA1E5DA2);
        let mut heap = HeapScheduler::with_capacity(16);
        let mut cal = CalendarScheduler::with_capacity(16);
        let mut wheel = WheelScheduler::with_capacity(16);
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut queued = 0usize;
        for _ in 0..20_000 {
            let push = queued < 4 || (queued < 600 && rng.gen_bool(0.55));
            if push {
                seq += 1;
                let dt = match rng.gen_range(0..10) {
                    0 => 0,
                    1..=7 => rng.gen_range(800..1200),
                    8 => rng.gen_range(0..100),
                    _ => rng.gen_range(50_000..500_000),
                };
                let item = Item {
                    time: now + dt,
                    seq,
                };
                heap.push(item);
                cal.push(item);
                wheel.push(item);
                queued += 1;
            } else {
                let a = heap.pop();
                let b = cal.pop();
                let c = wheel.pop();
                assert_eq!(a, b, "heap and calendar diverged");
                assert_eq!(a, c, "heap and wheel diverged");
                now = a.expect("queued > 0").time;
                queued -= 1;
            }
        }
        assert_eq!(drain(&mut heap), drain(&mut wheel));
    }

    #[test]
    fn wheel_bulk_load_matches_sequential_pushes() {
        let mut rng = StdRng::seed_from_u64(7);
        let items: Vec<Item> = (1..=5_000)
            .map(|seq| Item {
                time: rng.gen_range(0..200_000),
                seq,
            })
            .collect();
        let mut pushed = WheelScheduler::with_capacity(16);
        let mut loaded = WheelScheduler::with_capacity(16);
        for &it in &items {
            pushed.push(it);
        }
        loaded.bulk_load(items.clone());
        assert_eq!(loaded.len(), items.len());
        assert_eq!(drain(&mut pushed), drain(&mut loaded));
    }

    /// Items beyond the 2^30-tick top-level block go to the overflow
    /// heap and migrate back once the cursor's block reaches them.
    #[test]
    fn overflow_items_migrate_into_the_wheel() {
        let mut q = WheelScheduler::with_capacity(8);
        q.push(Item { time: 5, seq: 1 });
        q.push(Item {
            time: 3 << 30, // two top-level blocks out
            seq: 2,
        });
        assert_eq!(q.overflow.len(), 1, "far item waits in overflow");
        assert_eq!(q.pop().map(|i| i.seq), Some(1));
        // After the cursor jumps blocks, a push near the far item must
        // land in the wheel and still pop in exact order.
        q.push(Item {
            time: (3 << 30) + 10,
            seq: 3,
        });
        assert_eq!(
            q.pop(),
            Some(Item {
                time: 3 << 30,
                seq: 2
            })
        );
        assert_eq!(q.pop().map(|i| i.seq), Some(3));
        assert!(q.pop().is_none());
    }

    /// A push that lands inside the wheel span *later* than an item
    /// still sitting in overflow: the overflow item must still pop
    /// first (the drain runs against the live cursor, not insert-time
    /// state).
    #[test]
    fn overflow_item_beats_later_wheel_item() {
        let mut q = WheelScheduler::with_capacity(8);
        let block = 1u64 << 30;
        q.push(Item { time: 2, seq: 1 });
        q.push(Item {
            time: block + 100,
            seq: 2,
        });
        assert_eq!(q.pop().map(|i| i.seq), Some(1));
        assert_eq!(q.pop().map(|i| i.seq), Some(2)); // cursor now in block 1
        q.push(Item {
            time: 2 * block + 50, // overflow relative to block 1
            seq: 3,
        });
        q.push(Item {
            time: 2 * block + 80, // still overflow
            seq: 4,
        });
        assert_eq!(q.pop().map(|i| i.seq), Some(3));
        // seq 4 now drains into the wheel; a fresh same-block push after
        // it must not overtake it.
        q.push(Item {
            time: 2 * block + 60,
            seq: 5,
        });
        assert_eq!(q.pop().map(|i| i.seq), Some(5));
        assert_eq!(q.pop().map(|i| i.seq), Some(4));
    }

    #[test]
    fn sparse_times_cascade_across_levels() {
        // One item per level width: every pop exercises a cascade chain.
        let mut q = WheelScheduler::with_capacity(8);
        let times = [0u64, 63, 64, 4_095, 4_096, 262_143, 262_144, 16_777_215];
        for (i, &t) in times.iter().enumerate() {
            q.push(Item {
                time: t,
                seq: i as u64,
            });
        }
        let popped: Vec<u64> = drain(&mut q).iter().map(|i| i.time).collect();
        assert_eq!(popped, times);
    }

    /// The scheduler contract tolerates pushes behind the cursor; they
    /// pop first without disturbing wheel order.
    #[test]
    fn push_behind_cursor_pops_first() {
        let mut q = WheelScheduler::with_capacity(8);
        q.push(Item {
            time: 1_000,
            seq: 1,
        });
        q.push(Item {
            time: 2_000,
            seq: 2,
        });
        assert_eq!(q.pop().map(|i| i.seq), Some(1));
        q.push(Item { time: 500, seq: 3 }); // behind the cursor
        assert_eq!(q.pop().map(|i| i.seq), Some(3));
        assert_eq!(q.pop().map(|i| i.seq), Some(2));
        assert!(q.pop().is_none());
    }

    /// A time step that crosses a high-level coordinate boundary by one
    /// tick briefly places near items at a high level; cascading must
    /// still pop them in exact order.
    #[test]
    fn boundary_crossing_keeps_exact_order() {
        let mut q = WheelScheduler::with_capacity(8);
        let b = (1u64 << 24) - 1; // top coordinate flips at +1
        q.push(Item { time: b, seq: 1 });
        q.push(Item {
            time: b + 1,
            seq: 2,
        });
        q.push(Item {
            time: b + 2,
            seq: 3,
        });
        assert_eq!(
            drain(&mut q),
            vec![
                Item { time: b, seq: 1 },
                Item {
                    time: b + 1,
                    seq: 2
                },
                Item {
                    time: b + 2,
                    seq: 3
                },
            ]
        );
    }
}
