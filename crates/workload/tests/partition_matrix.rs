//! Property tests over random *directed* reachability matrices — the
//! paper's quorum-availability claim as an executable property.
//!
//! Two properties over the full `Detector<Reliable<DelayOptimal>>` stack
//! with §6 rotating-majority quorums:
//!
//! 1. **Safety unconditionally**: for any directed cut matrix (including
//!    wholly severed and one-way links), mutual exclusion is never
//!    violated — the simulator's CS monitor panics on overlap, so a
//!    completed run *is* the assertion.
//! 2. **Liveness on the surviving clique**: when some majority of sites
//!    stays fully *mutually* reachable, every request issued by a clique
//!    member completes. The failure detector's two suspicion paths make
//!    this work: silence covers a peer whose link *to* us is cut, and the
//!    reciprocal suspicion-echo path covers a peer whose link *from* us
//!    is cut — so a requester ends up suspecting exactly its
//!    non-mutually-reachable peers and the majority quorum source routes
//!    its quorum onto the clique.
//!
//! Cuts here are permanent (from `t = 0`); the dynamic cut/heal
//! interleavings are the model checker's job (`qmx-check`'s partition
//! scope) and the chaos soak's (`qmx_workload::chaos`).

use proptest::collection::btree_set;
use proptest::prelude::*;
use qmx_core::{
    Config, DelayOptimal, Detector, DetectorConfig, LossModel, Reliable, SiteId, TransportConfig,
};
use qmx_quorum::majority::MajorityQuorumSource;
use qmx_sim::{DelayModel, SchedulerKind, SimConfig, Simulator};
use std::collections::BTreeSet;

const N: usize = 5;

/// The full production stack of the chaos soak, sized for tests: §6
/// majority quorums under the reliable transport and the heartbeat
/// detector (no oracle — suspicion comes from silence and echoes only).
fn stack() -> Vec<Detector<Reliable<DelayOptimal>>> {
    (0..N)
        .map(|i| {
            let p = DelayOptimal::with_quorum_source(
                SiteId(i as u32),
                Config::default(),
                Box::new(MajorityQuorumSource::new(N)),
            );
            let peers: Vec<SiteId> = (0..N)
                .filter(|&j| j != i)
                .map(|j| SiteId(j as u32))
                .collect();
            Detector::new(
                Reliable::new(p, TransportConfig::default()),
                peers,
                DetectorConfig::default(),
            )
        })
        .collect()
}

fn sim(seed: u64) -> Simulator<Detector<Reliable<DelayOptimal>>> {
    Simulator::new(
        stack(),
        SimConfig {
            delay: DelayModel::Constant(1000),
            hold: DelayModel::Constant(100),
            detect_delay: 2000,
            oracle_notices: false,
            seed,
            loss: LossModel::None,
            outages: Vec::new(),
            scheduler: SchedulerKind::default(),
            deadline: None,
            retry: None,
        },
    )
}

/// Applies bit `i*N + j` of `mask` as a permanent cut of the directed
/// link `i → j`, skipping the pairs `keep_alive` protects.
fn apply_mask(
    sim: &mut Simulator<Detector<Reliable<DelayOptimal>>>,
    mask: u64,
    keep_alive: &BTreeSet<u32>,
) -> usize {
    let mut cut = 0;
    for i in 0..N as u32 {
        for j in 0..N as u32 {
            if i == j || (keep_alive.contains(&i) && keep_alive.contains(&j)) {
                continue;
            }
            if mask >> (i as usize * N + j as usize) & 1 == 1 {
                sim.schedule_cut(SiteId(i), SiteId(j), 0);
                cut += 1;
            }
        }
    }
    cut
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Liveness: a random majority clique is kept fully mutually
    /// reachable, every link outside it is cut or kept per a random
    /// matrix, and only clique sites issue requests — all of them must
    /// complete. Requests start at 40T, well after both suspicion paths
    /// (silence at ~hb_timeout, reciprocal echo at ~2x) have settled.
    #[test]
    fn clique_requests_complete_under_any_asymmetric_partition(
        clique in btree_set(0u32..N as u32, 3..4),
        mask in any::<u64>(),
        seed in 0u64..1_000,
    ) {
        let mut sim = sim(seed);
        apply_mask(&mut sim, mask, &clique);
        let mut arrivals = Vec::new();
        for (k, &s) in clique.iter().enumerate() {
            arrivals.push((SiteId(s), 40_000 + k as u64 * 3_000));
            arrivals.push((SiteId(s), 90_000 + k as u64 * 3_000));
        }
        sim.schedule_requests(&arrivals);
        sim.run_to_quiescence(5_000_000);
        prop_assert_eq!(sim.metrics().completed_cs(), arrivals.len());
        for (site, count) in sim.metrics().per_site_counts() {
            prop_assert_eq!(
                count,
                if clique.contains(&site.0) { 2 } else { 0 },
                "site {:?} completed {} rounds",
                site,
                count
            );
        }
    }

    /// Safety: under a *wholly unconstrained* directed cut matrix — any
    /// subset of the 20 ordered links severed, possibly partitioning every
    /// quorum — mutual exclusion still holds. Requests may wedge or park
    /// (liveness is forfeit without a reachable majority); the simulator's
    /// monitor panics if two sites ever overlap in the CS.
    #[test]
    fn mutual_exclusion_survives_any_directed_cut_matrix(
        mask in any::<u64>(),
        seed in 0u64..1_000,
    ) {
        let mut sim = sim(seed);
        apply_mask(&mut sim, mask, &BTreeSet::new());
        let arrivals: Vec<(SiteId, u64)> = (0..N as u32)
            .flat_map(|s| {
                [
                    (SiteId(s), 20_000 + u64::from(s) * 4_000),
                    (SiteId(s), 70_000 + u64::from(s) * 4_000),
                ]
            })
            .collect();
        sim.schedule_requests(&arrivals);
        sim.run_to_quiescence(3_000_000);
        // Reaching quiescence without the monitor tripping is the
        // property; completions are bounded by the workload either way.
        prop_assert!(sim.metrics().completed_cs() <= arrivals.len());
    }
}
