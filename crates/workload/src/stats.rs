//! Statistics reduction helpers and the unified run report.

use qmx_core::{AbortCounters, DetectorCounters, MsgKind, TransportCounters};
use qmx_sim::Metrics;
use std::collections::BTreeMap;

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    (!xs.is_empty()).then(|| xs.iter().sum::<f64>() / xs.len() as f64)
}

/// The `p`-th percentile (0–100) by nearest-rank on a sorted copy.
///
/// # Panics
///
/// Panics if `p` is outside `0..=100`.
pub fn percentile(xs: &[f64], p: u8) -> Option<f64> {
    assert!(p <= 100, "percentile must be 0..=100");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let rank = ((p as f64 / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    Some(sorted[rank])
}

/// Jain's fairness index over per-site CS counts: 1.0 = perfectly fair,
/// `1/n` = one site monopolizes.
pub fn jain_fairness(counts: &[usize]) -> Option<f64> {
    if counts.is_empty() || counts.iter().all(|&c| c == 0) {
        return None;
    }
    let n = counts.len() as f64;
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sumsq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    Some(sum * sum / (n * sumsq))
}

/// Uniform summary of one simulation run, with times normalized to the
/// mean message delay `T` so results read directly against the paper's
/// analysis.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of sites.
    pub n: usize,
    /// Mean quorum size `K` (equals `N` for broadcast algorithms).
    pub quorum_size: f64,
    /// Completed CS executions.
    pub completed: usize,
    /// Total wire messages.
    pub messages: u64,
    /// Messages per kind.
    pub by_kind: BTreeMap<MsgKind, u64>,
    /// Wire messages per completed CS.
    pub messages_per_cs: Option<f64>,
    /// Mean synchronization delay in units of `T` (contended handoffs
    /// only).
    pub sync_delay_t: Option<f64>,
    /// Number of contended handoffs the sync delay was averaged over.
    pub sync_samples: usize,
    /// Mean response time (request to CS exit, the paper's definition) in
    /// units of `T`.
    pub response_time_t: Option<f64>,
    /// Mean waiting time (request to CS *entry*) in units of `T`.
    pub waiting_time_t: Option<f64>,
    /// 99th-percentile response time in units of `T`.
    pub response_p99_t: Option<f64>,
    /// Throughput: completed CS per `T` of virtual time.
    pub throughput_per_t: f64,
    /// Jain fairness over per-site CS counts.
    pub fairness: Option<f64>,
    /// Messages dropped at the source because the directed link was cut
    /// (partition model).
    pub partition_drops: u64,
    /// Messages dropped by the injected fault model.
    pub injected_drops: u64,
    /// Messages duplicated by the injected fault model.
    pub injected_dups: u64,
    /// Reliable-transport counters summed over all sites (all zero when
    /// the protocols ran bare, without the transport wrapper).
    pub transport: TransportCounters,
    /// Failure-detector counters summed over all sites (all zero when the
    /// protocols ran without the heartbeat detector wrapper).
    pub detector: DetectorCounters,
    /// Request-abort counters summed over all sites: aborts, deadline
    /// misses, orphan grants returned after a withdrawal (all zero without
    /// deadlines or an abort schedule).
    pub aborts: AbortCounters,
    /// Aborted requests the closed-loop client re-issued with backoff.
    pub retries: u64,
    /// Number of distinct resources that completed at least one CS (1 for
    /// classic single-lock runs, 0 when nothing completed).
    pub resources: usize,
    /// Jain fairness over per-*resource* CS counts — how evenly completed
    /// executions spread across the lock space (trivially 1.0 for a
    /// single-lock run).
    pub resource_fairness: Option<f64>,
}

impl RunReport {
    /// Builds a report from raw simulator metrics.
    ///
    /// `t` is the mean message delay; `elapsed` the virtual time the run
    /// actually covered.
    pub fn from_metrics(n: usize, quorum_size: f64, m: &Metrics, t: f64, elapsed: u64) -> Self {
        let sync = m.sync_delays();
        let mut counts = vec![0usize; n];
        for (site, c) in m.per_site_counts() {
            counts[site.index()] = c;
        }
        let res_counts: Vec<usize> = m.per_resource_counts().into_values().collect();
        RunReport {
            n,
            quorum_size,
            completed: m.completed_cs(),
            messages: m.total_messages(),
            by_kind: m.messages_by_kind().clone(),
            messages_per_cs: m.messages_per_cs(),
            sync_delay_t: m.mean_sync_delay().map(|d| d / t),
            sync_samples: sync.len(),
            response_time_t: m.mean_response_time().map(|d| d / t),
            waiting_time_t: {
                let w: Vec<f64> = m
                    .records()
                    .iter()
                    .map(|r| r.waiting_time() as f64)
                    .collect();
                mean(&w).map(|x| x / t)
            },
            response_p99_t: {
                let resp: Vec<f64> = m
                    .records()
                    .iter()
                    .map(|r| r.response_time() as f64)
                    .collect();
                percentile(&resp, 99).map(|x| x / t)
            },
            throughput_per_t: if elapsed == 0 {
                0.0
            } else {
                m.completed_cs() as f64 * t / elapsed as f64
            },
            fairness: jain_fairness(&counts),
            partition_drops: m.dropped_by_partition(),
            injected_drops: m.injected_drops(),
            injected_dups: m.injected_dups(),
            transport: *m.transport(),
            detector: *m.detector(),
            aborts: *m.aborts(),
            retries: m.retries(),
            resources: res_counts.len(),
            resource_fairness: jain_fairness(&res_counts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentile() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(percentile(&[], 50), None);
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0), Some(1.0));
        assert_eq!(percentile(&xs, 50), Some(3.0));
        assert_eq!(percentile(&xs, 100), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 101);
    }

    #[test]
    fn fairness_bounds() {
        assert_eq!(jain_fairness(&[]), None);
        assert_eq!(jain_fairness(&[0, 0]), None);
        assert_eq!(jain_fairness(&[5, 5, 5]), Some(1.0));
        let skew = jain_fairness(&[10, 0, 0, 0]).unwrap();
        assert!((skew - 0.25).abs() < 1e-12);
    }

    #[test]
    fn report_normalizes_by_t() {
        use qmx_core::{ResourceId, SiteId};
        use qmx_sim::CsRecord;
        let mut m = Metrics::new();
        m.count_msg(MsgKind::Request);
        m.record_cs(CsRecord {
            site: SiteId(0),
            resource: ResourceId::SOLO,
            requested_at: 0,
            entered_at: 2000,
            exited_at: 2100,
        });
        m.record_cs(CsRecord {
            site: SiteId(1),
            resource: ResourceId::SOLO,
            requested_at: 1000,
            entered_at: 3100,
            exited_at: 3200,
        });
        let r = RunReport::from_metrics(2, 2.0, &m, 1000.0, 10_000);
        assert_eq!(r.completed, 2);
        assert_eq!(r.sync_delay_t, Some(1.0)); // 3100-2100 = 1000 = 1 T
        assert_eq!(r.response_time_t, Some(2.15)); // mean of (2100, 2200) / 1000
        assert_eq!(r.waiting_time_t, Some(2.05)); // mean of (2000, 2100) / 1000
        assert_eq!(r.response_p99_t, Some(2.2));
        assert!((r.throughput_per_t - 0.2).abs() < 1e-12);
        assert_eq!(r.fairness, Some(1.0));
        assert_eq!(r.resources, 1);
        assert_eq!(r.resource_fairness, Some(1.0));
    }
}
