//! Multi-seed replication: run the same scenario under several seeds and
//! summarize with mean ± standard deviation, so experiment reports can
//! state how stable a number is rather than quoting a single draw.

use crate::scenario::Scenario;
use crate::stats::RunReport;

/// Mean/σ/min/max summary of one metric across replicates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStat {
    /// Number of samples the metric was present in.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for n < 2).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl SummaryStat {
    /// Computes a summary; `None` if no sample exists.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Some(SummaryStat {
            n,
            mean,
            std: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }

    /// Renders as `mean ± std`.
    pub fn pm(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean, self.std)
    }
}

/// Aggregate of several replicated runs of one scenario.
#[derive(Debug, Clone)]
pub struct Replicates {
    /// The individual run reports, in seed order.
    pub runs: Vec<RunReport>,
}

impl Replicates {
    /// Runs `base` once per seed (overriding `base.seed`), fanning the
    /// runs out across [`crate::parallel::jobs`] worker threads. Each run
    /// is a pure function of `(base, seed)` and the reports come back in
    /// seed order, so the result is identical for any worker count.
    ///
    /// ```
    /// use qmx_workload::replicate::Replicates;
    /// use qmx_workload::scenario::Scenario;
    /// let reps = Replicates::collect(&Scenario::default(), [1, 2, 3]);
    /// assert_eq!(reps.runs.len(), 3);
    /// let completed = reps.completed().expect("all runs completed");
    /// assert!(completed.min >= 1.0);
    /// ```
    pub fn collect(base: &Scenario, seeds: impl IntoIterator<Item = u64>) -> Self {
        let runs = crate::parallel::par_map(seeds.into_iter().collect(), |seed| {
            Scenario {
                seed,
                ..base.clone()
            }
            .run()
        });
        Replicates { runs }
    }

    fn summarize(&self, f: impl Fn(&RunReport) -> Option<f64>) -> Option<SummaryStat> {
        let samples: Vec<f64> = self.runs.iter().filter_map(&f).collect();
        SummaryStat::from_samples(&samples)
    }

    /// Messages per CS across replicates.
    pub fn messages_per_cs(&self) -> Option<SummaryStat> {
        self.summarize(|r| r.messages_per_cs)
    }

    /// Synchronization delay (in `T`) across replicates.
    pub fn sync_delay_t(&self) -> Option<SummaryStat> {
        self.summarize(|r| r.sync_delay_t)
    }

    /// Response time (in `T`) across replicates.
    pub fn response_time_t(&self) -> Option<SummaryStat> {
        self.summarize(|r| r.response_time_t)
    }

    /// Throughput (per `T`) across replicates.
    pub fn throughput_per_t(&self) -> Option<SummaryStat> {
        self.summarize(|r| Some(r.throughput_per_t))
    }

    /// Completed CS executions across replicates.
    pub fn completed(&self) -> Option<SummaryStat> {
        self.summarize(|r| Some(r.completed as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::scenario::{Algorithm, QuorumSpec};
    use qmx_sim::DelayModel;

    #[test]
    fn summary_stat_math() {
        let s = SummaryStat::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.pm(), "2.00 ± 1.00");
        assert_eq!(SummaryStat::from_samples(&[]), None);
        let single = SummaryStat::from_samples(&[5.0]).unwrap();
        assert_eq!(single.std, 0.0);
    }

    #[test]
    fn replicates_vary_with_seed_but_stay_in_band() {
        let base = Scenario {
            n: 9,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Poisson { mean_gap: 10_000 },
            horizon: 300_000,
            delay: DelayModel::Exponential { mean: 1000 },
            hold: DelayModel::Constant(100),
            ..Scenario::default()
        };
        let reps = Replicates::collect(&base, 1..=5);
        assert_eq!(reps.runs.len(), 5);
        let msgs = reps.messages_per_cs().expect("all runs completed");
        assert_eq!(msgs.n, 5);
        // Different seeds produced different (but similar) numbers.
        assert!(msgs.std > 0.0, "seeds should differ");
        assert!(msgs.std < msgs.mean * 0.3, "but not wildly: {}", msgs.pm());
        let done = reps.completed().unwrap();
        assert!(done.min > 0.0);
    }

    #[test]
    fn sync_delay_band_is_tight_under_constant_delay() {
        let base = Scenario {
            n: 9,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Saturated { tick_gap: 500 },
            horizon: 200_000,
            delay: DelayModel::Constant(1000),
            hold: DelayModel::Constant(2000),
            ..Scenario::default()
        };
        let reps = Replicates::collect(&base, [7, 8, 9]);
        let d = reps.sync_delay_t().expect("contended");
        // Constant delays + saturated load: exactly T, zero variance.
        assert!((d.mean - 1.0).abs() < 0.05, "mean {}", d.mean);
        assert!(d.std < 0.05);
    }
}
