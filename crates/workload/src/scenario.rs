//! Scenario runner: pick an algorithm, a quorum construction, a workload —
//! get a [`RunReport`]. This is the engine behind every experiment binary
//! in `qmx-bench`.

use crate::arrival::{ArrivalProcess, ResourceArrival, ResourceMix};
use crate::stats::RunReport;
use qmx_baselines::{
    CarvalhoRoucairol, Lamport, Maekawa, Raymond, RicartAgrawala, SinghalDynamic, SuzukiKasami,
};
use qmx_core::{
    Config, DelayOptimal, Detector, DetectorConfig, LockSpace, LossModel, Outage, Protocol,
    Reliable, SiteId, TransportConfig,
};
use qmx_quorum::majority::{majority_system, MajorityQuorumSource};
use qmx_quorum::tree::TreeQuorumSource;
use qmx_quorum::{crumbling, fpp, grid, gridset, hqc, rst, tree, wheel, QuorumSystem};
use qmx_sim::{DelayModel, RetryPolicy, SchedulerKind, SimConfig, Simulator};

/// Which mutual exclusion algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's delay-optimal quorum algorithm.
    DelayOptimal,
    /// Ablation: delay-optimal code with forwarding disabled (2T handoff).
    DelayOptimalNoForwarding,
    /// Delay-optimal with §6 fault tolerance over reconstructible tree
    /// quorums (ignores the scenario's quorum spec).
    DelayOptimalFtTree,
    /// Delay-optimal with §6 fault tolerance over rotating majorities
    /// (ignores the scenario's quorum spec).
    DelayOptimalFtMajority,
    /// Maekawa's algorithm (baseline).
    Maekawa,
    /// Lamport's algorithm (baseline; quorum spec ignored).
    Lamport,
    /// Ricart–Agrawala (baseline; quorum spec ignored).
    RicartAgrawala,
    /// Suzuki–Kasami broadcast token (baseline; quorum spec ignored).
    SuzukiKasami,
    /// Raymond's tree token (baseline; quorum spec ignored).
    Raymond,
    /// Singhal's dynamic information-structure algorithm (baseline;
    /// quorum spec ignored).
    SinghalDynamic,
    /// Carvalho–Roucairol standing-permission optimization of
    /// Ricart–Agrawala (baseline; quorum spec ignored).
    CarvalhoRoucairol,
}

impl Algorithm {
    /// Short label for report rows.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::DelayOptimal => "delay-optimal",
            Algorithm::DelayOptimalNoForwarding => "delay-optimal (no fwd)",
            Algorithm::DelayOptimalFtTree => "delay-optimal FT/tree",
            Algorithm::DelayOptimalFtMajority => "delay-optimal FT/majority",
            Algorithm::Maekawa => "maekawa",
            Algorithm::Lamport => "lamport",
            Algorithm::RicartAgrawala => "ricart-agrawala",
            Algorithm::SuzukiKasami => "suzuki-kasami",
            Algorithm::Raymond => "raymond",
            Algorithm::SinghalDynamic => "singhal-dynamic",
            Algorithm::CarvalhoRoucairol => "carvalho-roucairol",
        }
    }

    /// All algorithms, in the paper's Table 1 order (proposed last).
    pub const ALL: [Algorithm; 11] = [
        Algorithm::Lamport,
        Algorithm::RicartAgrawala,
        Algorithm::CarvalhoRoucairol,
        Algorithm::Maekawa,
        Algorithm::SuzukiKasami,
        Algorithm::Raymond,
        Algorithm::SinghalDynamic,
        Algorithm::DelayOptimalNoForwarding,
        Algorithm::DelayOptimalFtTree,
        Algorithm::DelayOptimalFtMajority,
        Algorithm::DelayOptimal,
    ];
}

/// Which quorum construction backs the quorum-based algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumSpec {
    /// Maekawa grid (`≈ 2√N − 1`).
    Grid,
    /// Finite projective plane of prime order (`N = q²+q+1`, `K = q+1`).
    Fpp,
    /// Agrawal–El Abbadi tree (`N = 2^d − 1`, `K = log₂(N+1)`).
    Tree,
    /// Hierarchical quorum consensus (`N = 3^d`, `K = N^0.63`).
    Hqc,
    /// Grid-set with groups of `g`.
    GridSet(usize),
    /// Rangarajan–Setia–Tripathi with subgroups of `g`.
    Rst(usize),
    /// Rotating majority windows.
    Majority,
    /// Hub-and-spokes wheel (site 0 is the hub; quorum size 2).
    Wheel,
    /// Triangular crumbling wall (Peleg–Wool).
    Wall,
    /// Everyone's quorum is all `N` sites.
    All,
}

impl QuorumSpec {
    /// Builds the quorum system over `n` sites.
    ///
    /// # Errors
    ///
    /// Returns a message when `n` does not fit the construction (e.g. tree
    /// quorums need `N = 2^d − 1`).
    pub fn build(self, n: usize) -> Result<QuorumSystem, String> {
        match self {
            QuorumSpec::Grid => Ok(grid::grid_system(n)),
            QuorumSpec::Fpp => {
                // Solve q² + q + 1 = n for prime q.
                let q = (0..=n)
                    .find(|&q| q * q + q + 1 == n)
                    .ok_or_else(|| format!("FPP needs N = q^2+q+1, got {n}"))?;
                fpp::fpp_system(q).map_err(|e| e.to_string())
            }
            QuorumSpec::Tree => tree::tree_system(n).map_err(|e| e.to_string()),
            QuorumSpec::Hqc => hqc::hqc_system(n).map_err(|e| e.to_string()),
            QuorumSpec::GridSet(g) => gridset::gridset_system(n, g).map_err(|e| e.to_string()),
            QuorumSpec::Rst(g) => rst::rst_system(n, g).map_err(|e| e.to_string()),
            QuorumSpec::Majority => Ok(majority_system(n)),
            QuorumSpec::Wheel => Ok(wheel::wheel_system(n)),
            QuorumSpec::Wall => crumbling::triangular_wall(n).map_err(|e| e.to_string()),
            QuorumSpec::All => Ok(QuorumSystem::new(
                n,
                (0..n)
                    .map(|_| (0..n).map(|s| SiteId(s as u32)).collect())
                    .collect(),
            )),
        }
    }
}

/// A complete experiment configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Number of sites.
    pub n: usize,
    /// Algorithm under test.
    pub algorithm: Algorithm,
    /// Quorum construction (used by quorum-based algorithms).
    pub quorum: QuorumSpec,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Arrival window: requests are generated in `[0, horizon)`.
    pub horizon: u64,
    /// Message delay distribution (mean = `T`).
    pub delay: DelayModel,
    /// CS hold time distribution (`E`).
    pub hold: DelayModel,
    /// Crash schedule: `(site, time)` pairs.
    pub crashes: Vec<(SiteId, u64)>,
    /// Partition schedule: `(group-id per site, time)` pairs.
    pub partitions: Vec<(Vec<u32>, u64)>,
    /// Heal schedule: times at which the current partition (if any) is
    /// lifted. See [`qmx_sim::Simulator::schedule_heal`] for semantics.
    pub heals: Vec<u64>,
    /// Directed link-cut schedule: `(from, to, time)` severs only the
    /// `from → to` direction, so asymmetric and partial partitions are
    /// expressible (compose pairs for symmetric episodes). Messages sent
    /// on a cut link are dropped at the source; see
    /// [`qmx_sim::Simulator::schedule_cut`].
    pub cuts: Vec<(SiteId, SiteId, u64)>,
    /// Directed link-restore schedule: `(from, to, time)` lifts a cut.
    pub link_restores: Vec<(SiteId, SiteId, u64)>,
    /// Message-loss/duplication model applied to every link.
    pub loss: LossModel,
    /// Per-link transient outage windows.
    pub outages: Vec<Outage>,
    /// When `Some`, every site is wrapped in the reliable transport layer
    /// ([`qmx_core::Reliable`]) with this configuration. Required for
    /// liveness whenever `loss`/`outages` actually drop messages.
    pub transport: Option<TransportConfig>,
    /// When `Some`, every site is additionally wrapped in the heartbeat
    /// failure detector ([`qmx_core::Detector`]) and the simulator's
    /// oracle `failure(i)` notices are switched off: suspicion derives
    /// entirely from missed heartbeats, and recovered sites rejoin via the
    /// detector's handshake. Layering is `Detector<Reliable<P>>` when a
    /// transport is also configured, `Detector<P>` otherwise.
    pub detector: Option<DetectorConfig>,
    /// Recovery schedule: `(site, time)` pairs restarting previously
    /// crashed sites with fresh protocol state. Only meaningful with a
    /// `detector` (the oracle model has no un-failure notice).
    pub recoveries: Vec<(SiteId, u64)>,
    /// Oracle failure-detection latency. Ignored when `detector` is set.
    pub detect_delay: u64,
    /// Per-request deadline: each arrival arms `set_deadline(now +
    /// deadline)` before `request_cs`, so the protocol withdraws the
    /// request (client abort, [`qmx_core::Protocol::abort_cs`]) once the
    /// wait exceeds this budget. `None` disables deadlines.
    pub deadline: Option<u64>,
    /// Closed-loop client retry of aborted requests with jittered
    /// exponential backoff ([`qmx_sim::RetryPolicy`]). `None` drops
    /// aborted requests.
    pub retry: Option<RetryPolicy>,
    /// Explicit abort schedule: `(site, time)` pairs withdrawing a pending
    /// request regardless of deadlines (a user pressing Ctrl-C). No-ops
    /// when the site is not waiting at that time.
    pub aborts: Vec<(SiteId, u64)>,
    /// Override for the simulator's oracle `failure(i)` notices. `None`
    /// (the default) keeps the automatic rule — oracle on exactly when no
    /// `detector` is configured. `Some(false)` turns the oracle off
    /// *without* a detector: crashes and cuts then go entirely unnoticed
    /// and only the transport's retransmission rides them out, which is
    /// the honest "no failure detection at all" baseline for partition
    /// experiments (the oracle would otherwise convert a transient
    /// one-way cut into a permanent perceived crash at the hearing side,
    /// with no rejoin path). `Some(true)` alongside a detector mixes two
    /// failure models and is never useful; leave it `None` there.
    pub oracle_notices: Option<bool>,
    /// Event-scheduler implementation for the simulator (defaults from
    /// `QMX_SCHEDULER`, falling back to the calendar queue). Reports are
    /// byte-identical for either kind; CI's differential gate enforces it.
    pub scheduler: SchedulerKind,
    /// When `Some`, the run is a *multi-resource* experiment: every site
    /// hosts a [`qmx_core::LockSpace`] sharding one delay-optimal instance
    /// per named resource over the same links, and each arrival of the
    /// base process is tagged with a resource drawn from this mix. Only
    /// the delay-optimal algorithms support lock spaces. `None` is the
    /// classic single-lock run.
    pub mix: Option<ResourceMix>,
    /// RNG seed (workload and simulator derive from it).
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            n: 9,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Poisson { mean_gap: 50_000 },
            horizon: 1_000_000,
            delay: DelayModel::Constant(1000),
            hold: DelayModel::Constant(100),
            crashes: Vec::new(),
            partitions: Vec::new(),
            heals: Vec::new(),
            cuts: Vec::new(),
            link_restores: Vec::new(),
            loss: LossModel::None,
            outages: Vec::new(),
            transport: None,
            detector: None,
            recoveries: Vec::new(),
            detect_delay: 2000,
            deadline: None,
            retry: None,
            aborts: Vec::new(),
            oracle_notices: None,
            scheduler: SchedulerKind::default(),
            mix: None,
            seed: 0xD15C0,
        }
    }
}

/// A pre-generated request schedule: either classic single-lock arrivals or
/// resource-tagged arrivals for a lock-space run.
enum Load<'a> {
    /// `(site, time)` arrivals against the one implicit lock.
    Solo(&'a [(SiteId, u64)]),
    /// `(site, resource, time)` arrivals against a lock space.
    Spaced(&'a [ResourceArrival]),
}

impl Scenario {
    /// Runs the scenario to quiescence and reports.
    ///
    /// ```
    /// use qmx_workload::scenario::{Algorithm, QuorumSpec, Scenario};
    /// use qmx_workload::arrival::ArrivalProcess;
    /// let report = Scenario {
    ///     n: 9,
    ///     algorithm: Algorithm::DelayOptimal,
    ///     quorum: QuorumSpec::Grid,
    ///     arrivals: ArrivalProcess::Periodic { period: 50_000, stagger: 2_000 },
    ///     horizon: 200_000,
    ///     ..Scenario::default()
    /// }
    /// .run();
    /// assert_eq!(report.completed, 9 * 4);
    /// assert_eq!(report.quorum_size, 5.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the quorum spec does not fit `n` (experiment
    /// configurations are programmer input), or on a mutual exclusion
    /// violation (which would be a protocol bug).
    pub fn run(&self) -> RunReport {
        let n = self.n;
        let arrivals = self.arrivals.generate(n, self.horizon, self.seed ^ 0xA11CE);
        if let Some(mix) = &self.mix {
            return self.run_lockspace(mix, &arrivals);
        }
        let quorum_based = matches!(
            self.algorithm,
            Algorithm::DelayOptimal | Algorithm::DelayOptimalNoForwarding | Algorithm::Maekawa
        );
        let (sys, k) = if quorum_based {
            let sys = self
                .quorum
                .build(n)
                .unwrap_or_else(|e| panic!("bad scenario quorum: {e}"));
            let k = sys.mean_quorum_size();
            (Some(sys), k)
        } else {
            (None, n as f64)
        };

        match self.algorithm {
            Algorithm::DelayOptimal | Algorithm::DelayOptimalNoForwarding => {
                let cfg = Config {
                    forwarding_enabled: self.algorithm == Algorithm::DelayOptimal,
                };
                let sys = sys.expect("quorum built above");
                self.drive(
                    (0..n)
                        .map(|i| {
                            DelayOptimal::new(
                                SiteId(i as u32),
                                sys.quorum_of(SiteId(i as u32)).to_vec(),
                                cfg.clone(),
                            )
                        })
                        .collect(),
                    Load::Solo(&arrivals),
                    k,
                )
            }
            Algorithm::DelayOptimalFtTree => {
                let k = tree::tree_system(n)
                    .unwrap_or_else(|e| panic!("bad FT scenario: {e}"))
                    .mean_quorum_size();
                self.drive(
                    (0..n)
                        .map(|i| {
                            DelayOptimal::with_quorum_source(
                                SiteId(i as u32),
                                Config::default(),
                                Box::new(TreeQuorumSource::new(n).expect("checked above")),
                            )
                        })
                        .collect(),
                    Load::Solo(&arrivals),
                    k,
                )
            }
            Algorithm::DelayOptimalFtMajority => {
                let k = majority_system(n).mean_quorum_size();
                self.drive(
                    (0..n)
                        .map(|i| {
                            DelayOptimal::with_quorum_source(
                                SiteId(i as u32),
                                Config::default(),
                                Box::new(MajorityQuorumSource::new(n)),
                            )
                        })
                        .collect(),
                    Load::Solo(&arrivals),
                    k,
                )
            }
            Algorithm::Maekawa => {
                let sys = sys.expect("quorum built above");
                self.drive(
                    (0..n)
                        .map(|i| {
                            Maekawa::new(SiteId(i as u32), sys.quorum_of(SiteId(i as u32)).to_vec())
                        })
                        .collect(),
                    Load::Solo(&arrivals),
                    k,
                )
            }
            Algorithm::Lamport => self.drive(
                (0..n)
                    .map(|i| Lamport::new(SiteId(i as u32), n as u32))
                    .collect(),
                Load::Solo(&arrivals),
                k,
            ),
            Algorithm::RicartAgrawala => self.drive(
                (0..n)
                    .map(|i| RicartAgrawala::new(SiteId(i as u32), n as u32))
                    .collect(),
                Load::Solo(&arrivals),
                k,
            ),
            Algorithm::SuzukiKasami => self.drive(
                (0..n)
                    .map(|i| SuzukiKasami::new(SiteId(i as u32), n as u32))
                    .collect(),
                Load::Solo(&arrivals),
                k,
            ),
            Algorithm::Raymond => self.drive(
                (0..n)
                    .map(|i| Raymond::new(SiteId(i as u32), n as u32))
                    .collect(),
                Load::Solo(&arrivals),
                k,
            ),
            Algorithm::SinghalDynamic => self.drive(
                (0..n)
                    .map(|i| SinghalDynamic::new(SiteId(i as u32), n as u32))
                    .collect(),
                Load::Solo(&arrivals),
                k,
            ),
            Algorithm::CarvalhoRoucairol => self.drive(
                (0..n)
                    .map(|i| CarvalhoRoucairol::new(SiteId(i as u32), n as u32))
                    .collect(),
                Load::Solo(&arrivals),
                k,
            ),
        }
    }

    /// Builds one lock-space stack per site — `LockSpace<DelayOptimal>`
    /// under whatever transport/detector wrappers the scenario configures —
    /// and drives the resource-tagged arrival schedule through it. Because
    /// the space sits *inside* the wrappers, all resources share one
    /// retransmit/ack machine and one heartbeat state per link.
    fn run_lockspace(&self, mix: &ResourceMix, arrivals: &[(SiteId, u64)]) -> RunReport {
        assert!(
            matches!(
                self.algorithm,
                Algorithm::DelayOptimal | Algorithm::DelayOptimalNoForwarding
            ),
            "lock spaces shard the delay-optimal algorithm; {} is unsupported",
            self.algorithm.label()
        );
        let n = self.n;
        let sys = self
            .quorum
            .build(n)
            .unwrap_or_else(|e| panic!("bad scenario quorum: {e}"));
        let k = sys.mean_quorum_size();
        let cfg = Config {
            forwarding_enabled: self.algorithm == Algorithm::DelayOptimal,
        };
        let tagged = mix.assign(arrivals, self.seed ^ 0x5EED);
        let sites = (0..n)
            .map(|i| {
                let site = SiteId(i as u32);
                let quorum = sys.quorum_of(site).to_vec();
                let cfg = cfg.clone();
                LockSpace::new(
                    site,
                    std::sync::Arc::new(move |_rid| {
                        DelayOptimal::new(site, quorum.clone(), cfg.clone())
                    }),
                )
            })
            .collect();
        self.drive(sites, Load::Spaced(&tagged), k)
    }

    fn drive<P: Protocol + Clone>(
        &self,
        sites: Vec<P>,
        load: Load<'_>,
        quorum_size: f64,
    ) -> RunReport {
        // With a transport config, wrap every site in the reliable layer;
        // with a detector config, wrap the result in the heartbeat failure
        // detector. Each wrapper is itself a `Protocol`, so all four
        // layerings share `drive_bare`.
        let peers_of = |i: usize| -> Vec<SiteId> {
            (0..self.n)
                .filter(|&j| j != i)
                .map(|j| SiteId(j as u32))
                .collect()
        };
        match (&self.transport, &self.detector) {
            (Some(tcfg), Some(dcfg)) => self.drive_bare(
                sites
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| Detector::new(Reliable::new(p, *tcfg), peers_of(i), *dcfg))
                    .collect(),
                load,
                quorum_size,
            ),
            (Some(tcfg), None) => self.drive_bare(
                sites.into_iter().map(|p| Reliable::new(p, *tcfg)).collect(),
                load,
                quorum_size,
            ),
            (None, Some(dcfg)) => self.drive_bare(
                sites
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| Detector::new(p, peers_of(i), *dcfg))
                    .collect(),
                load,
                quorum_size,
            ),
            (None, None) => self.drive_bare(sites, load, quorum_size),
        }
    }

    fn drive_bare<P: Protocol + Clone>(
        &self,
        sites: Vec<P>,
        load: Load<'_>,
        quorum_size: f64,
    ) -> RunReport {
        let mut sim = Simulator::new(
            sites,
            SimConfig {
                delay: self.delay,
                hold: self.hold,
                detect_delay: self.detect_delay,
                // The oracle and the heartbeat detector are mutually
                // exclusive failure models; `oracle_notices` can force
                // the oracle off to model "no detection at all".
                oracle_notices: self.oracle_notices.unwrap_or(self.detector.is_none()),
                seed: self.seed,
                loss: self.loss.clone(),
                outages: self.outages.clone(),
                deadline: self.deadline,
                retry: self.retry,
                scheduler: self.scheduler,
            },
        );
        // Arrivals are pre-generated: load them in one pass (heapify /
        // bucket-fill) instead of one push per event.
        match load {
            Load::Solo(arrivals) => sim.schedule_requests(arrivals),
            Load::Spaced(arrivals) => sim.schedule_requests_r(arrivals),
        }
        for &(s, t) in &self.crashes {
            sim.schedule_crash(s, t);
        }
        // Recoveries snapshot pristine state, so schedule them before the
        // run begins (the snapshot is taken at scheduling time).
        for &(s, t) in &self.recoveries {
            sim.schedule_recovery(s, t);
        }
        for (groups, t) in &self.partitions {
            sim.schedule_partition(groups.clone(), *t);
        }
        for &t in &self.heals {
            sim.schedule_heal(t);
        }
        for &(f, to, t) in &self.cuts {
            sim.schedule_cut(f, to, t);
        }
        for &(f, to, t) in &self.link_restores {
            sim.schedule_restore(f, to, t);
        }
        for &(s, t) in &self.aborts {
            sim.schedule_abort(s, t);
        }
        // Let in-flight work drain well past the arrival window.
        let drain = self
            .horizon
            .saturating_mul(4)
            .max(self.horizon + 10_000_000);
        sim.run_to_quiescence(drain);
        RunReport::from_metrics(
            self.n,
            quorum_size,
            sim.metrics(),
            self.delay.mean(),
            sim.now().max(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(algorithm: Algorithm, n: usize, quorum: QuorumSpec) -> RunReport {
        Scenario {
            n,
            algorithm,
            quorum,
            arrivals: ArrivalProcess::Periodic {
                period: 20_000,
                stagger: 500,
            },
            horizon: 200_000,
            ..Scenario::default()
        }
        .run()
    }

    #[test]
    fn every_algorithm_completes_a_light_workload() {
        for alg in Algorithm::ALL {
            // Tree quorums need N = 2^d - 1: use 7 sites there, 9 elsewhere.
            let n = if alg == Algorithm::DelayOptimalFtTree {
                7
            } else {
                9
            };
            let r = quick(alg, n, QuorumSpec::Grid);
            let expected = n * 10 * 8 / 10; // ≥80% of scheduled arrivals
            assert!(
                r.completed >= expected,
                "{}: completed only {}",
                alg.label(),
                r.completed
            );
            assert!(r.fairness.unwrap() > 0.9, "{}", alg.label());
        }
    }

    #[test]
    fn delay_optimal_beats_maekawa_on_sync_delay_under_saturation() {
        let mk = |algorithm| {
            Scenario {
                n: 9,
                algorithm,
                quorum: QuorumSpec::Grid,
                arrivals: ArrivalProcess::Saturated { tick_gap: 5_000 },
                horizon: 300_000,
                ..Scenario::default()
            }
            .run()
        };
        let dopt = mk(Algorithm::DelayOptimal);
        let maek = mk(Algorithm::Maekawa);
        let d = dopt.sync_delay_t.expect("contended samples");
        let m = maek.sync_delay_t.expect("contended samples");
        assert!(d < m, "delay-optimal {d:.2}T must beat maekawa {m:.2}T");
        assert!(d < 1.5, "delay-optimal sync delay {d:.2}T should be near T");
        assert!(m > 1.5, "maekawa sync delay {m:.2}T should be near 2T");
    }

    #[test]
    fn quorum_spec_build_errors_are_reported() {
        assert!(QuorumSpec::Tree.build(10).is_err());
        assert!(QuorumSpec::Fpp.build(10).is_err());
        assert!(QuorumSpec::Hqc.build(10).is_err());
        assert!(QuorumSpec::Fpp.build(7).is_ok());
        assert!(QuorumSpec::All.build(4).is_ok());
    }

    #[test]
    fn lossy_scenario_with_transport_completes() {
        let r = Scenario {
            n: 9,
            arrivals: ArrivalProcess::Periodic {
                period: 40_000,
                stagger: 1_500,
            },
            horizon: 200_000,
            loss: LossModel::Iid {
                drop: 0.10,
                dup: 0.05,
            },
            transport: Some(TransportConfig::default()),
            ..Scenario::default()
        }
        .run();
        // Every *issued* request completes (the run drains to quiescence),
        // but under 10% loss a retransmission round can stretch one wait
        // past the next periodic arrival, which the busy check then drops
        // by design — so allow a small shortfall from the 9×5 schedule.
        assert!(
            (9 * 5 - 2..=9 * 5).contains(&r.completed),
            "completed {}",
            r.completed
        );
        assert!(r.injected_drops > 0, "loss model never fired");
        assert!(r.injected_dups > 0, "dup model never fired");
        assert!(r.transport.retransmissions > 0, "no retransmissions");
        assert!(r.transport.duplicates_dropped > 0, "dedup never engaged");
    }

    #[test]
    fn transient_outage_heals_via_scenario_fields() {
        // One request issued while site 0 -> site 1 is blacked out; the
        // transport retransmits past the outage and the CS completes.
        let r = Scenario {
            n: 3,
            quorum: QuorumSpec::All,
            arrivals: ArrivalProcess::Periodic {
                period: 500_000,
                stagger: 10,
            },
            horizon: 400_000,
            outages: vec![Outage {
                from: SiteId(0),
                to: SiteId(1),
                start: 0,
                end: 30_000,
            }],
            transport: Some(TransportConfig::default()),
            detect_delay: u64::MAX / 2, // no failure notices for the blip
            ..Scenario::default()
        }
        .run();
        assert_eq!(r.completed, 3, "completed {}", r.completed);
        assert!(r.transport.retransmissions > 0);
    }

    #[test]
    fn lockspace_scenario_completes_and_reports_per_resource() {
        let r = Scenario {
            n: 9,
            arrivals: ArrivalProcess::Poisson { mean_gap: 8_000 },
            horizon: 300_000,
            mix: Some(ResourceMix::Zipf {
                resources: 16,
                s: 0.8,
            }),
            ..Scenario::default()
        }
        .run();
        assert!(r.completed > 100, "completed only {}", r.completed);
        assert!(r.resources > 8, "only {} resources completed", r.resources);
        let rf = r.resource_fairness.expect("per-resource counts");
        assert!((0.0..=1.0).contains(&rf));
        // Zipf skew shows up as imperfect per-resource fairness.
        assert!(rf < 0.999, "zipf mix should not be perfectly fair");
    }

    #[test]
    fn lockspace_run_is_deterministic() {
        let mk = || {
            Scenario {
                n: 9,
                arrivals: ArrivalProcess::Poisson { mean_gap: 10_000 },
                horizon: 150_000,
                transport: Some(TransportConfig::default()),
                detector: Some(DetectorConfig::default()),
                mix: Some(ResourceMix::Hotspot {
                    resources: 8,
                    hot: 2,
                    hot_share: 0.7,
                }),
                ..Scenario::default()
            }
            .run()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.resources, b.resources);
        assert_eq!(a.resource_fairness, b.resource_fairness);
    }

    #[test]
    fn ft_scenario_survives_a_crash() {
        let r = Scenario {
            n: 7,
            algorithm: Algorithm::DelayOptimalFtTree,
            quorum: QuorumSpec::Tree,
            arrivals: ArrivalProcess::Periodic {
                period: 30_000,
                stagger: 1_000,
            },
            horizon: 300_000,
            crashes: vec![(SiteId(1), 90_000)],
            ..Scenario::default()
        }
        .run();
        // Live sites keep completing CS executions after the crash.
        assert!(r.completed >= 40, "completed {}", r.completed);
    }
}
