//! Latency-sample collection and percentile reporting for live load runs.
//!
//! The simulator reports sync delay in units of the model's `T`; the
//! networked runtime measures real microseconds on the wire. This module
//! is the reduction layer shared by `qmxctl bench-load` and the runtime
//! e2e tests: per-resource acquire-latency percentiles, plus the
//! *handover* (wire-level synchronization delay) distribution — the gap
//! between one client's release of a contended resource and the next
//! grant of it, which is the quantity the paper claims drops from `2T` to
//! `T` when reply-forwarding is enabled.

use crate::stats::{mean, percentile};
use std::fmt::Write as _;

/// A bag of latency samples in microseconds.
#[derive(Debug, Default, Clone)]
pub struct LatencySamples {
    xs: Vec<f64>,
}

impl LatencySamples {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (microseconds).
    pub fn push(&mut self, us: f64) {
        self.xs.push(us);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Percentile `p` (0–100) per [`crate::stats::percentile`], microseconds.
    pub fn percentile(&self, p: u8) -> Option<f64> {
        percentile(&self.xs, p)
    }

    /// Arithmetic mean, microseconds.
    pub fn mean(&self) -> Option<f64> {
        mean(&self.xs)
    }

    /// Folds another bag into this one.
    pub fn merge(&mut self, other: &LatencySamples) {
        self.xs.extend_from_slice(&other.xs);
    }
}

/// Per-resource row of a [`LoadReport`].
#[derive(Debug, Default, Clone)]
pub struct ResourceRow {
    /// Resource id.
    pub rid: u32,
    /// Acquires issued.
    pub acquires: u64,
    /// Grants received.
    pub grants: u64,
    /// Aborts (deadline or explicit).
    pub aborts: u64,
    /// Acquire→grant latency samples.
    pub latency: LatencySamples,
}

/// Aggregated result of one `bench-load` run, renderable as the text
/// report the CI job uploads.
#[derive(Debug, Default, Clone)]
pub struct LoadReport {
    /// Human label for the run (cluster size, mode, …).
    pub label: String,
    /// Run duration in microseconds.
    pub duration_us: u64,
    /// Virtual clients driving load.
    pub clients: usize,
    /// Per-resource rows, sorted by resource id.
    pub rows: Vec<ResourceRow>,
    /// Wire-level handover (sync-delay) samples: release of a contended
    /// resource → next grant.
    pub handover: LatencySamples,
}

fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(us) => format!("{:9.3}", us / 1_000.0),
        None => format!("{:>9}", "-"),
    }
}

impl LoadReport {
    /// All acquire-latency samples across resources.
    pub fn all_latency(&self) -> LatencySamples {
        let mut all = LatencySamples::new();
        for r in &self.rows {
            all.merge(&r.latency);
        }
        all
    }

    /// Total grants across resources.
    pub fn total_grants(&self) -> u64 {
        self.rows.iter().map(|r| r.grants).sum()
    }

    /// Renders the human-readable report `qmxctl bench-load` prints and
    /// CI archives.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let secs = self.duration_us as f64 / 1e6;
        let _ = writeln!(out, "bench-load: {}", self.label);
        let _ = writeln!(
            out,
            "duration {secs:.2}s, {} clients, {} resources, {} grants ({:.1}/s)",
            self.clients,
            self.rows.len(),
            self.total_grants(),
            self.total_grants() as f64 / secs.max(1e-9),
        );
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>8} {:>7} {:>9} {:>9} {:>9}  (acquire latency, ms)",
            "resource", "acquires", "grants", "aborts", "p50", "p95", "p99"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>9} {:>9} {:>8} {:>7} {} {} {}",
                format!("r{}", r.rid),
                r.acquires,
                r.grants,
                r.aborts,
                fmt_ms(r.latency.percentile(50)),
                fmt_ms(r.latency.percentile(95)),
                fmt_ms(r.latency.percentile(99)),
            );
        }
        let all = self.all_latency();
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>8} {:>7} {} {} {}",
            "ALL",
            self.rows.iter().map(|r| r.acquires).sum::<u64>(),
            self.total_grants(),
            self.rows.iter().map(|r| r.aborts).sum::<u64>(),
            fmt_ms(all.percentile(50)),
            fmt_ms(all.percentile(95)),
            fmt_ms(all.percentile(99)),
        );
        let _ = writeln!(
            out,
            "handover (wire sync delay): n={} p50={} p95={} p99={} ms",
            self.handover.len(),
            fmt_ms(self.handover.percentile(50)).trim_start(),
            fmt_ms(self.handover.percentile(95)).trim_start(),
            fmt_ms(self.handover.percentile(99)).trim_start(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_merge() {
        let mut a = LatencySamples::new();
        for i in 1..=100 {
            a.push(i as f64 * 1_000.0);
        }
        // stats::percentile ranks by round(p/100 * (n-1)) on the sorted
        // samples: for 1..=100 ms, p50 -> index 50, p99 -> index 98.
        assert_eq!(a.percentile(50), Some(51_000.0));
        assert_eq!(a.percentile(99), Some(99_000.0));
        assert_eq!(a.percentile(0), Some(1_000.0));
        assert_eq!(a.percentile(100), Some(100_000.0));
        let mut b = LatencySamples::new();
        b.push(1.0);
        b.merge(&a);
        assert_eq!(b.len(), 101);
    }

    #[test]
    fn report_renders_all_sections() {
        let mut rep = LoadReport {
            label: "test cluster".into(),
            duration_us: 2_000_000,
            clients: 4,
            ..Default::default()
        };
        let mut row = ResourceRow {
            rid: 3,
            acquires: 10,
            grants: 9,
            aborts: 1,
            ..Default::default()
        };
        for i in 0..9 {
            row.latency.push(1_000.0 + i as f64);
        }
        rep.rows.push(row);
        rep.handover.push(2_500.0);
        let text = rep.render();
        assert!(text.contains("bench-load: test cluster"));
        assert!(text.contains("r3"));
        assert!(text.contains("ALL"));
        assert!(text.contains("handover"));
        // Empty percentile cells render as dashes, not panics.
        let empty = LoadReport::default().render();
        assert!(empty.contains('-'));
    }
}
