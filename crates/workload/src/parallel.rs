//! Deterministic parallel fan-out over independent work items.
//!
//! Experiments are embarrassingly parallel: every cell of a parameter
//! sweep (and every seed of a replicate set) is a pure function of its
//! `(Scenario, seed)` input, with its own RNG seeded from the scenario.
//! [`par_map`] exploits that with scoped worker threads pulling items off
//! a shared counter, while keeping the **determinism contract**: results
//! come back in item order, and because no state is shared between items,
//! the output is byte-identical whatever the thread count — `--jobs 1`
//! and `--jobs 8` must (and do, see the regression tests) produce the
//! same report.
//!
//! The worker count comes from the process-wide [`set_jobs`] setting
//! (wired to `--jobs` in `qmxctl` and the bench binaries), defaulting to
//! the machine's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker count; 0 means "auto" (available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count used by [`par_map`] (0 restores auto-detection).
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::Relaxed);
}

/// The effective worker count: the last [`set_jobs`] value, or the
/// machine's available parallelism when unset.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `items` on up to [`jobs`] scoped threads, returning the
/// results **in item order**.
///
/// Each item is processed exactly once by exactly one worker; workers
/// claim items through an atomic cursor (dynamic load balancing, so one
/// slow cell does not idle the other threads). With one worker (or one
/// item) this degenerates to a plain sequential map with no thread spawn.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have stopped.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = jobs().min(items.len()).max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..work.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work mutex never poisoned before take")
                    .take()
                    .expect("each item is claimed exactly once");
                let out = f(item);
                *slots[i].lock().expect("fresh result mutex") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("workers joined without panicking")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        set_jobs(4);
        let out = par_map((0..100u64).collect(), |x| x * 2);
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
        set_jobs(0);
    }

    #[test]
    fn identical_across_worker_counts() {
        let run = |jobs| {
            set_jobs(jobs);
            let out = par_map((0..50u64).collect(), |x| {
                x.wrapping_mul(0x9E37_79B9).to_string()
            });
            set_jobs(0);
            out
        };
        assert_eq!(run(1), run(7));
    }

    #[test]
    fn empty_and_single_item_inputs() {
        set_jobs(8);
        let empty: Vec<u32> = par_map(Vec::new(), |x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(vec![41], |x| x + 1), vec![42]);
        set_jobs(0);
    }
}
