//! Multi-resource chaos soak: zipfian load over a sharded
//! [`qmx_core::LockSpace`] at every site while a ring of directed cuts
//! severs links underneath the full `Detector<Reliable<LockSpace>>` stack.
//!
//! The point of the soak is the *multiplexing* claim: hundreds of
//! resources share one retransmit/ack machine and one heartbeat state per
//! link, so a cut link is suspected once — not once per lock — and every
//! resource's parked requests ride the same per-link recovery. Safety is
//! asserted continuously per resource by the simulator's monitor (a
//! violation panics the soak); liveness is reported per episode and gated
//! by the tests.
//!
//! Every episode is a pure function of `(LockSpaceSoakConfig, index)`;
//! episodes fan out over [`crate::parallel::par_map`] and aggregate in
//! index order, so the rendered report is byte-identical for any
//! `--jobs` (pinned by a golden test, mirroring [`crate::chaos`]).

use crate::arrival::{ArrivalProcess, ResourceMix};
use crate::parallel::par_map;
use crate::scenario::{Algorithm, QuorumSpec, Scenario};
use qmx_core::{DetectorConfig, SiteId, TransportConfig};
use std::fmt::Write as _;

/// Soak parameters. The defaults keep a full soak in test-suite
/// territory while still spreading load over enough resources that the
/// per-link sharing is doing real work.
#[derive(Debug, Clone, Copy)]
pub struct LockSpaceSoakConfig {
    /// Number of sites.
    pub n: usize,
    /// Number of distinct resources in every site's lock space.
    pub resources: u32,
    /// Zipf skew of the resource popularity (0 = uniform).
    pub zipf: f64,
    /// Episodes run, each with its own derived seed.
    pub episodes: u32,
    /// Base RNG seed; workloads and resource draws derive from it.
    pub seed: u64,
    /// Arrival window per episode. All cuts heal well inside it.
    pub horizon: u64,
    /// Mean Poisson inter-arrival gap per site.
    pub mean_gap: u64,
}

impl Default for LockSpaceSoakConfig {
    fn default() -> Self {
        LockSpaceSoakConfig {
            n: 9,
            resources: 64,
            zipf: 1.0,
            episodes: 3,
            seed: 0x10C5,
            horizon: 180_000,
            mean_gap: 8_000,
        }
    }
}

/// Outcome of one lock-space soak episode.
#[derive(Debug, Clone)]
pub struct LockSpaceEpisode {
    /// Episode index.
    pub episode: u32,
    /// Completed CS executions, summed over all resources.
    pub completed: usize,
    /// Scheduled arrivals.
    pub expected: usize,
    /// Distinct resources that completed at least one CS.
    pub resources: usize,
    /// Jain fairness over per-resource CS counts (zipf skew shows up
    /// here; 1.0 would mean perfectly even resource popularity).
    pub resource_fairness: f64,
    /// Messages dropped at the source on cut links.
    pub partition_drops: u64,
    /// Heartbeat-silence suspicions raised by the shared detectors.
    pub suspicions: u64,
    /// Heartbeats sent — scales with *links*, never with resources.
    pub heartbeats: u64,
    /// Retransmissions by the shared per-link transports.
    pub retransmissions: u64,
}

/// Aggregate of a whole lock-space soak.
#[derive(Debug, Clone)]
pub struct LockSpaceSoakReport {
    /// Per-episode outcomes, in deterministic episode order.
    pub episodes: Vec<LockSpaceEpisode>,
}

impl LockSpaceSoakReport {
    /// Fraction of scheduled arrivals that completed, over all episodes.
    pub fn completion_ratio(&self) -> f64 {
        let done: usize = self.episodes.iter().map(|e| e.completed).sum();
        let need: usize = self.episodes.iter().map(|e| e.expected).sum();
        if need == 0 {
            1.0
        } else {
            done as f64 / need as f64
        }
    }

    /// Deterministic textual summary — the byte-identity artifact for the
    /// `--jobs` invariance gate.
    pub fn render(&self) -> String {
        let mut out =
            String::from("ep  done/need  res  res-fair  part-drop  susp  beats  retrans\n");
        for e in &self.episodes {
            let _ = writeln!(
                out,
                "{:>2}  {:>4}/{:<4}  {:>3}  {:>8.3}  {:>9}  {:>4}  {:>5}  {:>7}",
                e.episode,
                e.completed,
                e.expected,
                e.resources,
                e.resource_fairness,
                e.partition_drops,
                e.suspicions,
                e.heartbeats,
                e.retransmissions,
            );
        }
        out
    }
}

/// A timed directed link event: `(from, to, at)`.
type LinkSchedule = Vec<(SiteId, SiteId, u64)>;

/// The staggered directed ring of cuts from the partition chaos soak:
/// site `i` loses its outbound link to `i+1 (mod n)` at `40s + 2s·i`,
/// healed 20 s later — globally connected throughout, yet every site's
/// view is asymmetric somewhere.
fn ring_cut_schedule(n: usize) -> (LinkSchedule, LinkSchedule) {
    let mut cuts = Vec::new();
    let mut restores = Vec::new();
    for i in 0..n {
        let from = SiteId(i as u32);
        let to = SiteId(((i + 1) % n) as u32);
        let at = 40_000 + (i as u64) * 2_000;
        cuts.push((from, to, at));
        restores.push((from, to, at + 20_000));
    }
    (cuts, restores)
}

/// Runs the full soak: `episodes` zipfian multi-resource episodes under
/// ring cuts, fanned out over [`par_map`] and aggregated in deterministic
/// order.
///
/// # Panics
///
/// Panics on a mutual-exclusion violation (on any resource) in any
/// episode, or if the config is degenerate (`n < 3`, zero resources).
pub fn lockspace_soak(cfg: &LockSpaceSoakConfig) -> LockSpaceSoakReport {
    assert!(cfg.n >= 3, "lock-space soak needs n >= 3");
    assert!(cfg.resources > 0, "lock-space soak needs resources");
    let items: Vec<u32> = (0..cfg.episodes).collect();
    let c = *cfg;
    let episodes = par_map(items, move |ep| {
        // Fixed-arithmetic seed derivation: stable across job counts.
        let seed = c
            .seed
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(u64::from(ep));
        let (cuts, link_restores) = ring_cut_schedule(c.n);
        let arrivals = ArrivalProcess::Poisson {
            mean_gap: c.mean_gap,
        };
        let expected = arrivals.generate(c.n, c.horizon, seed ^ 0xA11CE).len();
        let report = Scenario {
            n: c.n,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals,
            horizon: c.horizon,
            cuts,
            link_restores,
            transport: Some(TransportConfig::default()),
            detector: Some(DetectorConfig::default()),
            mix: Some(ResourceMix::Zipf {
                resources: c.resources,
                s: c.zipf,
            }),
            seed,
            ..Scenario::default()
        }
        .run();
        LockSpaceEpisode {
            episode: ep,
            completed: report.completed,
            expected,
            resources: report.resources,
            resource_fairness: report.resource_fairness.unwrap_or(0.0),
            partition_drops: report.partition_drops,
            suspicions: report.detector.suspicions,
            heartbeats: report.detector.heartbeats_sent,
            retransmissions: report.transport.retransmissions,
        }
    });
    LockSpaceSoakReport { episodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::set_jobs;

    /// The headline gate: safety held per resource continuously (no
    /// panic), the ring cuts demonstrably bit (partition drops and
    /// suspicions fired), the shared transports rode them out, and the
    /// system served nearly all of the offered multi-resource load.
    #[test]
    fn lockspace_soak_is_safe_mostly_live_and_faults_fire() {
        let r = lockspace_soak(&LockSpaceSoakConfig::default());
        assert_eq!(r.episodes.len(), 3);
        for e in &r.episodes {
            assert!(
                e.completed * 10 >= e.expected * 9,
                "ep{} lost too much liveness: {}/{}",
                e.episode,
                e.completed,
                e.expected
            );
            assert!(
                e.resources > 16,
                "ep{} touched only {} resources",
                e.episode,
                e.resources
            );
            // Zipf popularity must show up as imperfect resource fairness.
            assert!(
                e.resource_fairness > 0.0 && e.resource_fairness < 0.999,
                "ep{} fairness {}",
                e.episode,
                e.resource_fairness
            );
        }
        let drops: u64 = r.episodes.iter().map(|e| e.partition_drops).sum();
        let susp: u64 = r.episodes.iter().map(|e| e.suspicions).sum();
        let retrans: u64 = r.episodes.iter().map(|e| e.retransmissions).sum();
        assert!(drops > 0, "no message ever hit a cut link");
        assert!(susp > 0, "no cut ever raised a suspicion");
        assert!(retrans > 0, "shared transports never retransmitted");
    }

    /// Golden `--jobs` invariance: the rendered soak report is
    /// byte-identical whatever the worker count.
    #[test]
    fn lockspace_soak_report_is_byte_identical_for_any_jobs() {
        let run = |jobs| {
            set_jobs(jobs);
            let out = lockspace_soak(&LockSpaceSoakConfig::default()).render();
            set_jobs(0);
            out
        };
        let sequential = run(1);
        assert_eq!(sequential, run(4));
        assert_eq!(sequential, run(13));
        // Golden shape: one header + one row per episode.
        assert_eq!(sequential.lines().count(), 4);
        assert!(sequential.starts_with("ep  done/need  res  res-fair"));
    }

    /// The issue's scale gate: a 1000-resource zipfian run over 25 sites
    /// completes, reports per-resource fairness and aggregate throughput,
    /// and the lazy sharding means untouched resources cost nothing.
    #[test]
    fn thousand_resources_over_25_sites_complete() {
        let r = Scenario {
            n: 25,
            arrivals: ArrivalProcess::Poisson { mean_gap: 6_000 },
            horizon: 120_000,
            transport: Some(TransportConfig::default()),
            mix: Some(ResourceMix::Zipf {
                resources: 1000,
                s: 0.9,
            }),
            ..Scenario::default()
        }
        .run();
        assert!(r.completed > 300, "completed only {}", r.completed);
        assert!(
            r.resources > 100,
            "only {} of 1000 resources saw traffic",
            r.resources
        );
        assert!(r.resource_fairness.is_some());
        assert!(r.throughput_per_t > 0.0);
    }
}
