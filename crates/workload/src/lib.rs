//! # qmx-workload
//!
//! Workload generation and experiment scaffolding for the `qmx` workspace:
//!
//! * [`arrival`] — arrival processes (Poisson, periodic, saturated,
//!   hotspot, bursty), all seeded and deterministic;
//! * [`scenario`] — the one-stop experiment runner: pick an
//!   [`scenario::Algorithm`], a [`scenario::QuorumSpec`], a workload and
//!   fault schedule, get a [`stats::RunReport`];
//! * [`stats`] — metric reduction (messages per CS, sync delay in `T`,
//!   response/waiting percentiles, Jain fairness);
//! * [`latency`] — wall-clock latency bags and the `bench-load` percentile
//!   report used by the live networked runtime;
//! * [`replicate`] — multi-seed replication with mean ± σ summaries;
//! * [`parallel`] — deterministic fan-out of independent runs across
//!   worker threads (results in item order, identical for any `--jobs`);
//! * [`chaos`] — nemesis-style partition chaos soak (ring cuts, bridge
//!   isolation, flapping links) against live load, byte-identical for
//!   any worker count;
//! * [`lockspace_soak`] — multi-resource chaos soak: zipfian load over a
//!   sharded [`qmx_core::LockSpace`] per site under ring cuts, proving
//!   that all resources share one transport/detector per link.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod chaos;
pub mod latency;
pub mod lockspace_soak;
pub mod parallel;
pub mod replicate;
pub mod scenario;
pub mod stats;
