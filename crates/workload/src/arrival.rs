//! Arrival processes: when does each site ask for the critical section?
//!
//! The paper analyses two regimes — *light load* (contention is rare) and
//! *heavy load* (there is always a pending request) — so the generators
//! here are parameterized to sweep between them. All generators are seeded
//! and deterministic.

use qmx_core::SiteId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduled CS request: `(site, virtual time)`.
pub type Arrival = (SiteId, u64);

/// An arrival process over `n` sites and a time horizon.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: each site independently draws exponential
    /// inter-arrival gaps with mean `mean_gap` ticks.
    ///
    /// `mean_gap >>` the CS service time gives the paper's light load;
    /// `mean_gap <<` service time saturates the system (heavy load).
    Poisson {
        /// Mean inter-arrival gap per site, in ticks.
        mean_gap: u64,
    },
    /// Every site requests at fixed intervals, phase-shifted per site.
    Periodic {
        /// Interval between a site's requests.
        period: u64,
        /// Phase offset multiplier per site id.
        stagger: u64,
    },
    /// Saturation: every site re-requests immediately; emitted as dense
    /// arrivals every `tick_gap` ticks so a site re-enters the fray as soon
    /// as it finishes. The paper's "heavy load".
    Saturated {
        /// Gap between consecutive arrival injections per site.
        tick_gap: u64,
    },
    /// Hotspot: only the first `hot` sites generate load (Poisson), the
    /// rest stay quiet. Models skewed access to a shared resource.
    Hotspot {
        /// Number of actively requesting sites.
        hot: usize,
        /// Mean inter-arrival gap per hot site.
        mean_gap: u64,
    },
    /// Bursty: quiet periods punctuated by bursts in which every site
    /// requests in quick succession. Stresses the arbiters' queues and the
    /// inquire/yield machinery far more than smooth arrivals.
    Bursty {
        /// Time between burst starts.
        burst_gap: u64,
        /// Arrivals per site within one burst.
        burst_len: u32,
        /// Gap between a site's arrivals inside a burst.
        intra_gap: u64,
    },
}

impl ArrivalProcess {
    /// Generates the arrival schedule for `n` sites over `[0, horizon)`.
    ///
    /// ```
    /// use qmx_workload::arrival::ArrivalProcess;
    /// let schedule = ArrivalProcess::Periodic { period: 100, stagger: 10 }
    ///     .generate(2, 250, 0);
    /// assert_eq!(schedule.len(), 6); // 3 arrivals per site
    /// assert!(schedule.windows(2).all(|w| w[0].1 <= w[1].1)); // time-sorted
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the process parameters are degenerate (zero
    /// period/gap).
    pub fn generate(&self, n: usize, horizon: u64, seed: u64) -> Vec<Arrival> {
        assert!(n > 0, "need at least one site");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<Arrival> = Vec::new();
        match *self {
            ArrivalProcess::Poisson { mean_gap } => {
                assert!(mean_gap > 0, "mean gap must be positive");
                for s in 0..n {
                    let mut t = 0u64;
                    loop {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let gap = (-(u.ln()) * mean_gap as f64).round().max(1.0) as u64;
                        t = t.saturating_add(gap);
                        if t >= horizon {
                            break;
                        }
                        out.push((SiteId(s as u32), t));
                    }
                }
            }
            ArrivalProcess::Periodic { period, stagger } => {
                assert!(period > 0, "period must be positive");
                for s in 0..n {
                    let mut t = (s as u64) * stagger;
                    while t < horizon {
                        out.push((SiteId(s as u32), t));
                        t += period;
                    }
                }
            }
            ArrivalProcess::Saturated { tick_gap } => {
                assert!(tick_gap > 0, "tick gap must be positive");
                for s in 0..n {
                    let mut t = 0u64;
                    while t < horizon {
                        out.push((SiteId(s as u32), t));
                        t += tick_gap;
                    }
                }
            }
            ArrivalProcess::Hotspot { hot, mean_gap } => {
                assert!(hot > 0 && hot <= n, "hot sites must be within 1..=n");
                return ArrivalProcess::Poisson { mean_gap }.generate(hot, horizon, seed);
            }
            ArrivalProcess::Bursty {
                burst_gap,
                burst_len,
                intra_gap,
            } => {
                assert!(burst_gap > 0 && intra_gap > 0, "gaps must be positive");
                assert!(burst_len > 0, "bursts must be non-empty");
                let mut start = 0u64;
                while start < horizon {
                    for s in 0..n {
                        // Small per-site jitter so bursts are not lockstep.
                        let jitter: u64 = rng.gen_range(0..intra_gap.max(1));
                        for k in 0..u64::from(burst_len) {
                            let t = start + jitter + k * intra_gap;
                            if t < horizon {
                                out.push((SiteId(s as u32), t));
                            }
                        }
                    }
                    start += burst_gap;
                }
            }
        }
        out.sort_by_key(|&(s, t)| (t, s));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_in_horizon() {
        let p = ArrivalProcess::Poisson { mean_gap: 100 };
        let a = p.generate(4, 10_000, 7);
        let b = p.generate(4, 10_000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(_, t)| t < 10_000));
        // Roughly horizon/mean arrivals per site.
        assert!(a.len() > 200 && a.len() < 600, "got {}", a.len());
    }

    #[test]
    fn poisson_seed_changes_schedule() {
        let p = ArrivalProcess::Poisson { mean_gap: 100 };
        assert_ne!(p.generate(4, 10_000, 1), p.generate(4, 10_000, 2));
    }

    #[test]
    fn periodic_staggers_sites() {
        let p = ArrivalProcess::Periodic {
            period: 100,
            stagger: 10,
        };
        let a = p.generate(3, 250, 0);
        assert!(a.contains(&(SiteId(0), 0)));
        assert!(a.contains(&(SiteId(1), 10)));
        assert!(a.contains(&(SiteId(2), 220)));
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn saturated_floods_all_sites() {
        let p = ArrivalProcess::Saturated { tick_gap: 50 };
        let a = p.generate(2, 200, 0);
        assert_eq!(a.len(), 8); // 4 per site
        assert_eq!(a[0].1, 0);
    }

    #[test]
    fn hotspot_only_uses_hot_sites() {
        let p = ArrivalProcess::Hotspot {
            hot: 2,
            mean_gap: 50,
        };
        let a = p.generate(10, 5_000, 3);
        assert!(a.iter().all(|&(s, _)| s.0 < 2));
        assert!(!a.is_empty());
    }

    #[test]
    fn bursty_generates_clustered_arrivals() {
        let p = ArrivalProcess::Bursty {
            burst_gap: 10_000,
            burst_len: 3,
            intra_gap: 100,
        };
        let a = p.generate(4, 25_000, 5);
        // 3 bursts fit (0, 10k, 20k): 4 sites x 3 arrivals x 3 bursts.
        assert_eq!(a.len(), 36);
        // All arrivals cluster near burst starts.
        assert!(
            a.iter().all(|&(_, t)| t % 10_000 < 500),
            "arrival times: {a:?}"
        );
        // Deterministic per seed.
        assert_eq!(a, p.generate(4, 25_000, 5));
    }

    #[test]
    fn arrivals_are_time_sorted() {
        let p = ArrivalProcess::Poisson { mean_gap: 30 };
        let a = p.generate(5, 2_000, 11);
        assert!(a.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
