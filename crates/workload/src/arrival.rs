//! Arrival processes: when does each site ask for the critical section?
//!
//! The paper analyses two regimes — *light load* (contention is rare) and
//! *heavy load* (there is always a pending request) — so the generators
//! here are parameterized to sweep between them. All generators are seeded
//! and deterministic.

use qmx_core::{ResourceId, SiteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduled CS request: `(site, virtual time)`.
pub type Arrival = (SiteId, u64);

/// A scheduled multi-resource CS request: `(site, resource, virtual time)`.
pub type ResourceArrival = (SiteId, ResourceId, u64);

/// An arrival process over `n` sites and a time horizon.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: each site independently draws exponential
    /// inter-arrival gaps with mean `mean_gap` ticks.
    ///
    /// `mean_gap >>` the CS service time gives the paper's light load;
    /// `mean_gap <<` service time saturates the system (heavy load).
    Poisson {
        /// Mean inter-arrival gap per site, in ticks.
        mean_gap: u64,
    },
    /// Every site requests at fixed intervals, phase-shifted per site.
    Periodic {
        /// Interval between a site's requests.
        period: u64,
        /// Phase offset multiplier per site id.
        stagger: u64,
    },
    /// Saturation: every site re-requests immediately; emitted as dense
    /// arrivals every `tick_gap` ticks so a site re-enters the fray as soon
    /// as it finishes. The paper's "heavy load".
    Saturated {
        /// Gap between consecutive arrival injections per site.
        tick_gap: u64,
    },
    /// Hotspot: only the first `hot` sites generate load (Poisson), the
    /// rest stay quiet. Models skewed access to a shared resource.
    Hotspot {
        /// Number of actively requesting sites.
        hot: usize,
        /// Mean inter-arrival gap per hot site.
        mean_gap: u64,
    },
    /// Bursty: quiet periods punctuated by bursts in which every site
    /// requests in quick succession. Stresses the arbiters' queues and the
    /// inquire/yield machinery far more than smooth arrivals.
    Bursty {
        /// Time between burst starts.
        burst_gap: u64,
        /// Arrivals per site within one burst.
        burst_len: u32,
        /// Gap between a site's arrivals inside a burst.
        intra_gap: u64,
    },
}

impl ArrivalProcess {
    /// Generates the arrival schedule for `n` sites over `[0, horizon)`.
    ///
    /// ```
    /// use qmx_workload::arrival::ArrivalProcess;
    /// let schedule = ArrivalProcess::Periodic { period: 100, stagger: 10 }
    ///     .generate(2, 250, 0);
    /// assert_eq!(schedule.len(), 6); // 3 arrivals per site
    /// assert!(schedule.windows(2).all(|w| w[0].1 <= w[1].1)); // time-sorted
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the process parameters are degenerate (zero
    /// period/gap).
    pub fn generate(&self, n: usize, horizon: u64, seed: u64) -> Vec<Arrival> {
        assert!(n > 0, "need at least one site");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<Arrival> = Vec::new();
        match *self {
            ArrivalProcess::Poisson { mean_gap } => {
                assert!(mean_gap > 0, "mean gap must be positive");
                for s in 0..n {
                    let mut t = 0u64;
                    loop {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let gap = (-(u.ln()) * mean_gap as f64).round().max(1.0) as u64;
                        t = t.saturating_add(gap);
                        if t >= horizon {
                            break;
                        }
                        out.push((SiteId(s as u32), t));
                    }
                }
            }
            ArrivalProcess::Periodic { period, stagger } => {
                assert!(period > 0, "period must be positive");
                for s in 0..n {
                    let mut t = (s as u64) * stagger;
                    while t < horizon {
                        out.push((SiteId(s as u32), t));
                        t += period;
                    }
                }
            }
            ArrivalProcess::Saturated { tick_gap } => {
                assert!(tick_gap > 0, "tick gap must be positive");
                for s in 0..n {
                    let mut t = 0u64;
                    while t < horizon {
                        out.push((SiteId(s as u32), t));
                        t += tick_gap;
                    }
                }
            }
            ArrivalProcess::Hotspot { hot, mean_gap } => {
                assert!(hot > 0 && hot <= n, "hot sites must be within 1..=n");
                return ArrivalProcess::Poisson { mean_gap }.generate(hot, horizon, seed);
            }
            ArrivalProcess::Bursty {
                burst_gap,
                burst_len,
                intra_gap,
            } => {
                assert!(burst_gap > 0 && intra_gap > 0, "gaps must be positive");
                assert!(burst_len > 0, "bursts must be non-empty");
                let mut start = 0u64;
                while start < horizon {
                    for s in 0..n {
                        // Small per-site jitter so bursts are not lockstep.
                        let jitter: u64 = rng.gen_range(0..intra_gap.max(1));
                        for k in 0..u64::from(burst_len) {
                            let t = start + jitter + k * intra_gap;
                            if t < horizon {
                                out.push((SiteId(s as u32), t));
                            }
                        }
                    }
                    start += burst_gap;
                }
            }
        }
        out.sort_by_key(|&(s, t)| (t, s));
        out
    }
}

/// How a base arrival schedule spreads across a lock space of named
/// resources. Assignment is a pure function of `(seed, arrival index)` via
/// a splitmix64 hash, so it is independent of any RNG stream, stable under
/// re-generation, and trivially `--jobs`-invariant.
///
/// Resource ids are always drawn from `1..=resources` — id 0 is
/// [`ResourceId::SOLO`], reserved for classic single-lock runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ResourceMix {
    /// Zipf-distributed popularity: resource `k` (1-based) receives traffic
    /// proportional to `1 / k^s`. `s = 0` is uniform; `s ≈ 1` is the
    /// classic web-caching skew; larger `s` concentrates almost all load on
    /// a handful of hot locks.
    Zipf {
        /// Number of distinct resources (≥ 1).
        resources: u32,
        /// Skew exponent (≥ 0).
        s: f64,
    },
    /// Hotspot: a fixed fraction of arrivals hits the first `hot`
    /// resources (uniformly among them); the rest spread uniformly over
    /// the remaining cold resources.
    Hotspot {
        /// Number of distinct resources (≥ 1).
        resources: u32,
        /// Number of hot resources (1..=resources).
        hot: u32,
        /// Fraction of arrivals directed at the hot set (0.0..=1.0).
        hot_share: f64,
    },
}

/// splitmix64 finalizer: a high-quality 64-bit mix used to derive
/// per-arrival resource draws without touching any RNG stream.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` double from a hash of `(seed, i)`.
fn unit(seed: u64, i: u64) -> f64 {
    (splitmix64(seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F)) >> 11) as f64 / (1u64 << 53) as f64
}

impl ResourceMix {
    /// Number of distinct resources in the mix.
    pub fn resources(&self) -> u32 {
        match *self {
            ResourceMix::Zipf { resources, .. } | ResourceMix::Hotspot { resources, .. } => {
                resources
            }
        }
    }

    /// Tags each arrival of a base schedule with a resource id drawn from
    /// this mix. The `i`-th arrival's resource depends only on `(seed, i)`,
    /// so two calls with the same inputs agree element-wise.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters: zero resources, negative skew, a
    /// hot set outside `1..=resources`, or a hot share outside `0..=1`.
    pub fn assign(&self, arrivals: &[Arrival], seed: u64) -> Vec<ResourceArrival> {
        match *self {
            ResourceMix::Zipf { resources, s } => {
                assert!(resources > 0, "need at least one resource");
                assert!(s >= 0.0, "zipf skew must be non-negative");
                // Cumulative (unnormalized) harmonic weights; binary search
                // per arrival keeps a 1000-resource assignment cheap.
                let mut cdf = Vec::with_capacity(resources as usize);
                let mut acc = 0.0f64;
                for k in 1..=resources {
                    acc += 1.0 / f64::from(k).powf(s);
                    cdf.push(acc);
                }
                let total = acc;
                arrivals
                    .iter()
                    .enumerate()
                    .map(|(i, &(site, t))| {
                        let u = unit(seed, i as u64) * total;
                        let k = cdf.partition_point(|&c| c <= u) as u32;
                        (site, ResourceId(k.min(resources - 1) + 1), t)
                    })
                    .collect()
            }
            ResourceMix::Hotspot {
                resources,
                hot,
                hot_share,
            } => {
                assert!(resources > 0, "need at least one resource");
                assert!(
                    hot >= 1 && hot <= resources,
                    "hot set must be within 1..=resources"
                );
                assert!(
                    (0.0..=1.0).contains(&hot_share),
                    "hot share must be within 0..=1"
                );
                let cold = resources - hot;
                arrivals
                    .iter()
                    .enumerate()
                    .map(|(i, &(site, t))| {
                        let u = unit(seed, i as u64);
                        let rid = if u < hot_share || cold == 0 {
                            // Re-scale the draw into the hot bucket.
                            let v = if hot_share > 0.0 { u / hot_share } else { u };
                            1 + ((v * f64::from(hot)) as u32).min(hot - 1)
                        } else {
                            let v = (u - hot_share) / (1.0 - hot_share);
                            hot + 1 + ((v * f64::from(cold)) as u32).min(cold - 1)
                        };
                        (site, ResourceId(rid), t)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_in_horizon() {
        let p = ArrivalProcess::Poisson { mean_gap: 100 };
        let a = p.generate(4, 10_000, 7);
        let b = p.generate(4, 10_000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(_, t)| t < 10_000));
        // Roughly horizon/mean arrivals per site.
        assert!(a.len() > 200 && a.len() < 600, "got {}", a.len());
    }

    #[test]
    fn poisson_seed_changes_schedule() {
        let p = ArrivalProcess::Poisson { mean_gap: 100 };
        assert_ne!(p.generate(4, 10_000, 1), p.generate(4, 10_000, 2));
    }

    #[test]
    fn periodic_staggers_sites() {
        let p = ArrivalProcess::Periodic {
            period: 100,
            stagger: 10,
        };
        let a = p.generate(3, 250, 0);
        assert!(a.contains(&(SiteId(0), 0)));
        assert!(a.contains(&(SiteId(1), 10)));
        assert!(a.contains(&(SiteId(2), 220)));
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn saturated_floods_all_sites() {
        let p = ArrivalProcess::Saturated { tick_gap: 50 };
        let a = p.generate(2, 200, 0);
        assert_eq!(a.len(), 8); // 4 per site
        assert_eq!(a[0].1, 0);
    }

    #[test]
    fn hotspot_only_uses_hot_sites() {
        let p = ArrivalProcess::Hotspot {
            hot: 2,
            mean_gap: 50,
        };
        let a = p.generate(10, 5_000, 3);
        assert!(a.iter().all(|&(s, _)| s.0 < 2));
        assert!(!a.is_empty());
    }

    #[test]
    fn bursty_generates_clustered_arrivals() {
        let p = ArrivalProcess::Bursty {
            burst_gap: 10_000,
            burst_len: 3,
            intra_gap: 100,
        };
        let a = p.generate(4, 25_000, 5);
        // 3 bursts fit (0, 10k, 20k): 4 sites x 3 arrivals x 3 bursts.
        assert_eq!(a.len(), 36);
        // All arrivals cluster near burst starts.
        assert!(
            a.iter().all(|&(_, t)| t % 10_000 < 500),
            "arrival times: {a:?}"
        );
        // Deterministic per seed.
        assert_eq!(a, p.generate(4, 25_000, 5));
    }

    #[test]
    fn arrivals_are_time_sorted() {
        let p = ArrivalProcess::Poisson { mean_gap: 30 };
        let a = p.generate(5, 2_000, 11);
        assert!(a.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn zipf_mix_is_deterministic_and_skewed() {
        let base = ArrivalProcess::Poisson { mean_gap: 10 }.generate(5, 20_000, 7);
        let mix = ResourceMix::Zipf {
            resources: 50,
            s: 1.2,
        };
        let a = mix.assign(&base, 42);
        assert_eq!(a, mix.assign(&base, 42));
        assert!(a.iter().all(|&(_, r, _)| (1..=50).contains(&r.0)));
        // Preserves sites and times element-wise.
        assert!(a
            .iter()
            .zip(&base)
            .all(|(&(s, _, t), &(bs, bt))| s == bs && t == bt));
        // Skew: the hottest resource dominates the coldest decisively.
        let count = |rid: u32| a.iter().filter(|&&(_, r, _)| r.0 == rid).count();
        assert!(count(1) > 10 * count(50).max(1) / 2, "not skewed enough");
        // A different seed re-deals the resources.
        assert_ne!(a, mix.assign(&base, 43));
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let base = ArrivalProcess::Saturated { tick_gap: 5 }.generate(4, 10_000, 0);
        let mix = ResourceMix::Zipf {
            resources: 4,
            s: 0.0,
        };
        let a = mix.assign(&base, 9);
        let n = a.len();
        for rid in 1..=4u32 {
            let c = a.iter().filter(|&&(_, r, _)| r.0 == rid).count();
            assert!(c > n / 8 && c < n / 2, "resource {rid} got {c} of {n}");
        }
    }

    #[test]
    fn hotspot_mix_concentrates_on_hot_set() {
        let base = ArrivalProcess::Saturated { tick_gap: 5 }.generate(4, 10_000, 0);
        let mix = ResourceMix::Hotspot {
            resources: 20,
            hot: 2,
            hot_share: 0.9,
        };
        let a = mix.assign(&base, 3);
        assert!(a.iter().all(|&(_, r, _)| (1..=20).contains(&r.0)));
        let hot = a.iter().filter(|&&(_, r, _)| r.0 <= 2).count();
        assert!(
            hot as f64 > 0.8 * a.len() as f64,
            "hot set got {hot}/{}",
            a.len()
        );
    }

    #[test]
    fn mixes_never_emit_resource_zero() {
        let base = ArrivalProcess::Periodic {
            period: 10,
            stagger: 1,
        }
        .generate(3, 1_000, 0);
        for mix in [
            ResourceMix::Zipf {
                resources: 1,
                s: 2.0,
            },
            ResourceMix::Hotspot {
                resources: 1,
                hot: 1,
                hot_share: 1.0,
            },
        ] {
            assert!(mix
                .assign(&base, 5)
                .iter()
                .all(|&(_, r, _)| r != qmx_core::ResourceId::SOLO));
        }
    }
}
