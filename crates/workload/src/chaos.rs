//! Nemesis-style chaos soak: sustained live load while a scripted
//! adversary cuts and restores directed links underneath the full
//! `Detector<Reliable<DelayOptimal>>` stack.
//!
//! Three nemeses cover the partition shapes that matter:
//!
//! * **ring-cut** — every site loses exactly one *outbound* link
//!   (`i → i+1` around the ring), so the network is globally connected
//!   yet every pairwise view is asymmetric somewhere;
//! * **bridge-isolation** — one site is severed in one direction against
//!   the whole rest of the network (all in-links or all out-links), the
//!   worst-case asymmetric island;
//! * **flapping-link** — one directed link cuts and heals repeatedly,
//!   stress-testing suspicion/withdrawal hysteresis (echo replies,
//!   reciprocal suspicion maturation) under churn.
//!
//! Safety is checked *continuously* — the simulator's mutual-exclusion
//! monitor asserts on every CS entry — and liveness *after restore*: every
//! episode heals all its cuts well before the arrival window closes, so
//! every scheduled request must complete by quiescence.
//!
//! Every episode is a pure function of `(ChaosConfig, nemesis, index)`;
//! episodes fan out over [`crate::parallel::par_map`] and aggregate in
//! index order, so the rendered report is byte-identical for any
//! `--jobs` (pinned by a golden test).

use crate::arrival::ArrivalProcess;
use crate::parallel::par_map;
use crate::scenario::{Algorithm, QuorumSpec, Scenario};
use qmx_core::{DetectorConfig, DetectorCounters, SiteId, TransportConfig};
use std::fmt::Write as _;

/// The partition shapes the soak cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nemesis {
    /// Directed ring of cuts: site `i` cannot reach site `i+1 (mod n)`.
    RingCut,
    /// One site loses all links in one direction (in or out).
    BridgeIsolation,
    /// One directed link flaps (cut/heal) several times.
    FlappingLink,
}

impl Nemesis {
    /// All nemeses, in soak order.
    pub const ALL: [Nemesis; 3] = [
        Nemesis::RingCut,
        Nemesis::BridgeIsolation,
        Nemesis::FlappingLink,
    ];

    /// Short label for report rows.
    pub fn label(self) -> &'static str {
        match self {
            Nemesis::RingCut => "ring-cut",
            Nemesis::BridgeIsolation => "bridge-isolation",
            Nemesis::FlappingLink => "flapping-link",
        }
    }
}

/// Soak parameters. The defaults keep a full soak (every nemesis ×
/// `episodes_per_nemesis`) in test-suite territory.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Number of sites (rotating-majority quorums need `n >= 3`).
    pub n: usize,
    /// Episodes run per nemesis, each with its own derived seed.
    pub episodes_per_nemesis: u32,
    /// Base RNG seed; episode schedules and workloads derive from it.
    pub seed: u64,
    /// Arrival window per episode. All cuts heal well inside it.
    pub horizon: u64,
    /// Gap between a site's requests (periodic live load).
    pub period: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            n: 5,
            episodes_per_nemesis: 2,
            seed: 0xC4A05,
            horizon: 240_000,
            period: 30_000,
        }
    }
}

/// Outcome of one nemesis episode.
#[derive(Debug, Clone)]
pub struct EpisodeReport {
    /// Which nemesis ran.
    pub nemesis: Nemesis,
    /// Episode index within the nemesis.
    pub episode: u32,
    /// Completed CS executions.
    pub completed: usize,
    /// Scheduled arrivals (liveness target: every one completes).
    pub expected: usize,
    /// Messages dropped at the source on cut links.
    pub partition_drops: u64,
    /// Aggregated failure-detector counters.
    pub detector: DetectorCounters,
    /// Transport retransmissions across the episode.
    pub retransmissions: u64,
    /// Transport sends abandoned (should stay 0: no site ever dies).
    pub gave_up: u64,
}

/// Aggregate of a whole soak.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Per-episode outcomes, in deterministic (nemesis, episode) order.
    pub episodes: Vec<EpisodeReport>,
}

impl ChaosReport {
    /// Whether every episode completed every scheduled request.
    pub fn all_live(&self) -> bool {
        self.episodes.iter().all(|e| e.completed == e.expected)
    }

    /// Deterministic textual summary — the byte-identity artifact for the
    /// `--jobs` invariance gate.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "nemesis           ep  done/need  part-drop  susp  recip  defer  conf  retrans\n",
        );
        for e in &self.episodes {
            let d = &e.detector;
            let _ = writeln!(
                out,
                "{:<17} {:>3}  {:>4}/{:<4}  {:>9}  {:>4}  {:>5}  {:>5}  {:>4}  {:>7}",
                e.nemesis.label(),
                e.episode,
                e.completed,
                e.expected,
                e.partition_drops,
                d.suspicions,
                d.reciprocal_suspicions,
                d.confirms_deferred,
                d.failures_confirmed,
                e.retransmissions,
            );
        }
        out
    }
}

/// SplitMix64 step: the soak's only randomness, chosen for bit-exact
/// determinism independent of any RNG crate.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the cut/restore schedule for one episode. Windows are sized
/// against the default detector: long enough (>= `hb_timeout` +
/// maturation) to fire silence *and* reciprocal suspicions, short enough
/// (< `fail_confirm`) that an unvouched suspicion never escalates to the
/// definitive §6 reclamation of a live site.
/// A list of `(from, to, at)` directed link events (cuts or restores).
type LinkSchedule = Vec<(SiteId, SiteId, u64)>;

fn nemesis_schedule(nemesis: Nemesis, n: usize, rng: &mut u64) -> (LinkSchedule, LinkSchedule) {
    let mut cuts = Vec::new();
    let mut restores = Vec::new();
    match nemesis {
        Nemesis::RingCut => {
            // Staggered directed ring: every site's outbound view breaks
            // toward its successor while the network stays connected.
            for i in 0..n {
                let from = SiteId(i as u32);
                let to = SiteId(((i + 1) % n) as u32);
                let at = 40_000 + (i as u64) * 2_000;
                cuts.push((from, to, at));
                restores.push((from, to, at + 20_000));
            }
        }
        Nemesis::BridgeIsolation => {
            let b = SiteId((splitmix(rng) % n as u64) as u32);
            let inbound = splitmix(rng) & 1 == 0;
            // Straddle exactly one arrival wave (the 60s one): by then the
            // rest of the network has reciprocally suspected the bridge and
            // routes around it, while the bridge's own request parks and
            // re-issues at the 64s heal — draining well before the next
            // wave, so a delayed request never collides with (and thereby
            // swallows) a later scheduled arrival.
            let at = 40_000;
            for i in 0..n {
                let x = SiteId(i as u32);
                if x == b {
                    continue;
                }
                let (from, to) = if inbound { (x, b) } else { (b, x) };
                cuts.push((from, to, at));
                restores.push((from, to, at + 24_000));
            }
        }
        Nemesis::FlappingLink => {
            let f = SiteId((splitmix(rng) % n as u64) as u32);
            let mut t = SiteId((splitmix(rng) % n as u64) as u32);
            if t == f {
                t = SiteId((t.0 + 1) % n as u32);
            }
            for k in 0..4u64 {
                let at = 30_000 + k * 15_000;
                cuts.push((f, t, at));
                restores.push((f, t, at + 6_000));
            }
        }
    }
    (cuts, restores)
}

/// Runs the full soak: every nemesis × `episodes_per_nemesis`, fanned out
/// over [`par_map`] and aggregated in deterministic order.
///
/// Safety (mutual exclusion) is asserted continuously inside the
/// simulator; a violation panics the soak. Liveness is reported, not
/// asserted — gate on [`ChaosReport::all_live`].
///
/// # Panics
///
/// Panics on a mutual-exclusion violation in any episode, or if `n < 3`
/// (rotating majorities need a real quorum system).
pub fn chaos_soak(cfg: &ChaosConfig) -> ChaosReport {
    assert!(cfg.n >= 3, "chaos soak needs n >= 3");
    let mut items = Vec::new();
    for (ni, nemesis) in Nemesis::ALL.into_iter().enumerate() {
        for ep in 0..cfg.episodes_per_nemesis {
            // Fixed-arithmetic seed derivation: stable across job counts
            // and platforms.
            let mut rng = cfg
                .seed
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(((ni as u64) << 32) | u64::from(ep));
            let (cuts, link_restores) = nemesis_schedule(nemesis, cfg.n, &mut rng);
            items.push((nemesis, ep, splitmix(&mut rng), cuts, link_restores));
        }
    }
    let n = cfg.n;
    let (horizon, period) = (cfg.horizon, cfg.period);
    let episodes = par_map(items, move |(nemesis, ep, seed, cuts, link_restores)| {
        let arrivals = ArrivalProcess::Periodic {
            period,
            stagger: 1_000,
        };
        let expected = arrivals.generate(n, horizon, 0).len();
        let report = Scenario {
            n,
            algorithm: Algorithm::DelayOptimalFtMajority,
            quorum: QuorumSpec::Majority,
            arrivals,
            horizon,
            cuts,
            link_restores,
            transport: Some(TransportConfig::default()),
            detector: Some(DetectorConfig::default()),
            seed,
            ..Scenario::default()
        }
        .run();
        EpisodeReport {
            nemesis,
            episode: ep,
            completed: report.completed,
            expected,
            partition_drops: report.partition_drops,
            detector: report.detector,
            retransmissions: report.transport.retransmissions,
            gave_up: report.transport.gave_up,
        }
    });
    ChaosReport { episodes }
}

/// Outcome of one abort-soak episode: the same nemesis schedules as
/// [`chaos_soak`], but every request carries a deadline and a closed-loop
/// retry client, so requests wedged behind a cut *abort* and re-issue
/// with backoff instead of parking until the heal.
#[derive(Debug, Clone)]
pub struct AbortEpisodeReport {
    /// Which nemesis ran.
    pub nemesis: Nemesis,
    /// Episode index within the nemesis.
    pub episode: u32,
    /// Completed CS executions.
    pub completed: usize,
    /// Scheduled arrivals.
    pub expected: usize,
    /// Requests withdrawn through `abort_cs`.
    pub aborts: u64,
    /// Aborts triggered by an expired deadline (subset of `aborts`).
    pub deadline_aborts: u64,
    /// Aborted requests the closed-loop client re-issued with backoff.
    pub retries: u64,
    /// Grants that arrived after their request was withdrawn and were
    /// returned to their arbiters.
    pub orphan_grants: u64,
}

/// Aggregate of a whole abort soak.
#[derive(Debug, Clone)]
pub struct AbortChaosReport {
    /// Per-episode outcomes, in deterministic (nemesis, episode) order.
    pub episodes: Vec<AbortEpisodeReport>,
}

impl AbortChaosReport {
    /// Deterministic textual summary, byte-identical for any `--jobs`.
    pub fn render(&self) -> String {
        let mut out =
            String::from("nemesis           ep  done/need  abort  ddl-abort  retry  orphan\n");
        for e in &self.episodes {
            let _ = writeln!(
                out,
                "{:<17} {:>3}  {:>4}/{:<4}  {:>5}  {:>9}  {:>5}  {:>6}",
                e.nemesis.label(),
                e.episode,
                e.completed,
                e.expected,
                e.aborts,
                e.deadline_aborts,
                e.retries,
                e.orphan_grants,
            );
        }
        out
    }
}

/// Runs the abort soak: the [`chaos_soak`] nemeses with per-request
/// deadlines and jittered-backoff retries layered on top. A request that
/// cannot assemble its quorum before the deadline (typically because a
/// cut embargoes a grant or the `Abandon` itself) withdraws cleanly and
/// re-issues; safety is still asserted continuously by the simulator's
/// monitor, and the soak additionally exercises the orphan-grant return
/// path under real partition churn.
///
/// Liveness under aborts is *weaker* than [`chaos_soak`]'s by design: a
/// retry still pending when a site's next scheduled arrival fires
/// swallows that arrival (the closed-loop client is busy), so gate on
/// "most requests complete and the abort machinery demonstrably fired",
/// not on `completed == expected`.
///
/// # Panics
///
/// Panics on a mutual-exclusion violation in any episode, or if `n < 3`.
pub fn abort_chaos_soak(cfg: &ChaosConfig) -> AbortChaosReport {
    assert!(cfg.n >= 3, "chaos soak needs n >= 3");
    let mut items = Vec::new();
    for (ni, nemesis) in Nemesis::ALL.into_iter().enumerate() {
        for ep in 0..cfg.episodes_per_nemesis {
            // Distinct stream from the plain soak so the two never share
            // episode seeds.
            let mut rng = cfg
                .seed
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(0xAB0_0000_0000)
                .wrapping_add(((ni as u64) << 32) | u64::from(ep));
            let (cuts, link_restores) = nemesis_schedule(nemesis, cfg.n, &mut rng);
            items.push((nemesis, ep, splitmix(&mut rng), cuts, link_restores));
        }
    }
    let n = cfg.n;
    let (horizon, period) = (cfg.horizon, cfg.period);
    let episodes = par_map(items, move |(nemesis, ep, seed, cuts, link_restores)| {
        let arrivals = ArrivalProcess::Periodic {
            period,
            stagger: 1_000,
        };
        let expected = arrivals.generate(n, horizon, 0).len();
        // Deadline well under every nemesis window (cuts last 6–24s), so
        // wedged requests abort mid-cut; backoff caps low enough that
        // retries re-probe several times before the heal.
        let report = Scenario {
            n,
            algorithm: Algorithm::DelayOptimalFtMajority,
            quorum: QuorumSpec::Majority,
            arrivals,
            horizon,
            cuts,
            link_restores,
            transport: Some(TransportConfig::default()),
            detector: Some(DetectorConfig::default()),
            deadline: Some(10_000),
            retry: Some(qmx_sim::RetryPolicy {
                base: 2_000,
                cap: 8_000,
                max_attempts: 10,
            }),
            seed,
            ..Scenario::default()
        }
        .run();
        AbortEpisodeReport {
            nemesis,
            episode: ep,
            completed: report.completed,
            expected,
            aborts: report.aborts.aborts,
            deadline_aborts: report.aborts.deadline_aborts,
            retries: report.retries,
            orphan_grants: report.aborts.orphan_grants,
        }
    });
    AbortChaosReport { episodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::set_jobs;

    /// The headline soak gate: safety held continuously (no panic),
    /// every episode recovered full liveness after its cuts healed, the
    /// nemeses actually bit (partition drops, suspicions, reciprocal
    /// suspicions all fired), and no live site was ever confirmed dead.
    #[test]
    fn soak_is_safe_live_and_exercises_the_fault_paths() {
        let r = chaos_soak(&ChaosConfig::default());
        assert_eq!(r.episodes.len(), 6);
        for e in &r.episodes {
            assert_eq!(
                e.completed,
                e.expected,
                "{} ep{} lost liveness: {}/{}",
                e.nemesis.label(),
                e.episode,
                e.completed,
                e.expected
            );
            assert_eq!(e.gave_up, 0, "{} abandoned sends", e.nemesis.label());
            assert_eq!(
                e.detector.failures_confirmed,
                0,
                "{} confirmed a live site dead",
                e.nemesis.label()
            );
        }
        assert!(r.all_live());
        let drops: u64 = r.episodes.iter().map(|e| e.partition_drops).sum();
        let susp: u64 = r.episodes.iter().map(|e| e.detector.suspicions).sum();
        let recip: u64 = r
            .episodes
            .iter()
            .map(|e| e.detector.reciprocal_suspicions)
            .sum();
        assert!(drops > 0, "no message ever hit a cut link");
        assert!(susp > 0, "no cut ever raised a suspicion");
        assert!(recip > 0, "reciprocal suspicion never matured");
    }

    /// The abort soak gate: safety held continuously (no panic), the
    /// deadline/abort/retry machinery demonstrably fired under partition
    /// churn, and the system still served the bulk of the offered load —
    /// aborting never wedged an arbiter.
    #[test]
    fn abort_soak_is_safe_and_the_abort_machinery_fires() {
        let r = abort_chaos_soak(&ChaosConfig::default());
        assert_eq!(r.episodes.len(), 6);
        let (mut done, mut need) = (0usize, 0usize);
        for e in &r.episodes {
            assert!(
                e.completed > 0,
                "{} ep{} served nothing",
                e.nemesis.label(),
                e.episode
            );
            assert_eq!(
                e.deadline_aborts, e.aborts,
                "every soak abort comes from a deadline, not a schedule"
            );
            done += e.completed;
            need += e.expected;
        }
        let aborts: u64 = r.episodes.iter().map(|e| e.aborts).sum();
        let retries: u64 = r.episodes.iter().map(|e| e.retries).sum();
        assert!(aborts > 0, "no cut ever forced a deadline abort");
        assert!(retries > 0, "no aborted request was ever retried");
        assert!(
            done * 10 >= need * 8,
            "aborts cost too much liveness: {done}/{need}"
        );
    }

    /// Abort-soak `--jobs` invariance: byte-identical render for any
    /// worker count.
    #[test]
    fn abort_soak_report_is_byte_identical_for_any_jobs() {
        let run = |jobs| {
            set_jobs(jobs);
            let out = abort_chaos_soak(&ChaosConfig::default()).render();
            set_jobs(0);
            out
        };
        let sequential = run(1);
        assert_eq!(sequential, run(4));
        assert_eq!(sequential.lines().count(), 7);
    }

    /// Golden `--jobs` invariance: the rendered soak report is
    /// byte-identical whatever the worker count.
    #[test]
    fn soak_report_is_byte_identical_for_any_jobs() {
        let run = |jobs| {
            set_jobs(jobs);
            let out = chaos_soak(&ChaosConfig::default()).render();
            set_jobs(0);
            out
        };
        let sequential = run(1);
        assert_eq!(sequential, run(4));
        assert_eq!(sequential, run(13));
        // Golden shape: one header + one row per episode.
        assert_eq!(sequential.lines().count(), 7);
        assert!(sequential.contains("ring-cut"));
        assert!(sequential.contains("bridge-isolation"));
        assert!(sequential.contains("flapping-link"));
    }
}
