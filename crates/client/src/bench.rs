//! Open-loop load engine behind `qmxctl bench-load`.
//!
//! A population of virtual clients shares one poll loop and one
//! [`Transport`]: each client connects to a site (round-robin), then
//! cycles think → acquire → hold → release with exponential think times
//! and zipfian resource selection, so a few dozen virtual clients
//! approximate open-loop arrivals against the cluster while respecting
//! the one-outstanding-acquire-per-resource session rule.
//!
//! Two latency families are collected:
//!
//! * **acquire latency** — acquire sent → grant received, per resource
//!   (the client-visible response time percentiles);
//! * **handover** — the engine's wire-level view of synchronization
//!   delay: whenever a release is sent for a resource on which another
//!   virtual client is already waiting, the gap until that resource's
//!   next grant is one handover sample. Comparing this distribution with
//!   reply-forwarding on vs off is exactly the paper's `T` vs `2T` claim,
//!   measured on sockets instead of in the simulator.

use std::io;

use qmx_core::ResourceId;
use qmx_runtime::transport::Transport;
use qmx_workload::latency::{LatencySamples, LoadReport, ResourceRow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::core::{ClientCore, ClientEvent};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Site addresses; virtual clients attach round-robin.
    pub site_addrs: Vec<String>,
    /// Virtual client count.
    pub clients: usize,
    /// Distinct resources.
    pub resources: u32,
    /// Measured run length, microseconds.
    pub duration_us: u64,
    /// Mean exponential think time between operations, microseconds.
    pub think_mean_us: u64,
    /// Lock hold time, microseconds.
    pub hold_us: u64,
    /// Per-acquire wait budget (server-side abort after this), if any.
    pub wait_us: Option<u64>,
    /// Zipf skew for resource choice (`0.0` = uniform).
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// Report label.
    pub label: String,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            site_addrs: Vec::new(),
            clients: 24,
            resources: 8,
            duration_us: 10_000_000,
            think_mean_us: 20_000,
            hold_us: 2_000,
            wait_us: Some(2_000_000),
            zipf_s: 0.9,
            seed: 1,
            label: String::new(),
        }
    }
}

enum VcState {
    Thinking { until: u64 },
    Waiting { rid: u32, req: u64, issued_at: u64 },
    Holding { rid: u32, req: u64, until: u64 },
    Releasing,
    Done,
}

struct Vc<C: qmx_runtime::transport::Conn> {
    core: ClientCore<C>,
    state: VcState,
}

struct RidTrack {
    row: ResourceRow,
    /// Set when a release was sent while another client waited; the next
    /// grant closes the handover sample.
    release_mark: Option<u64>,
}

fn zipf_pick(rng: &mut StdRng, weights: &[f64]) -> u32 {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i as u32;
        }
        x -= *w;
    }
    (weights.len() - 1) as u32
}

fn exp_sample(rng: &mut StdRng, mean_us: u64) -> u64 {
    if mean_us == 0 {
        return 0;
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    (-(1.0 - u).ln() * mean_us as f64) as u64
}

/// Runs the load against a live cluster and reduces to a [`LoadReport`].
pub fn run_bench<T: Transport>(transport: &mut T, cfg: &BenchConfig) -> io::Result<LoadReport> {
    assert!(!cfg.site_addrs.is_empty(), "bench needs at least one site");
    assert!(cfg.clients > 0 && cfg.resources > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let weights: Vec<f64> = (0..cfg.resources)
        .map(|r| 1.0 / ((r + 1) as f64).powf(cfg.zipf_s))
        .collect();

    let mut vcs: Vec<Vc<T::Conn>> = Vec::with_capacity(cfg.clients);
    for i in 0..cfg.clients {
        let addr = &cfg.site_addrs[i % cfg.site_addrs.len()];
        let core = ClientCore::connect(transport, addr, i as u64 + 1)?;
        vcs.push(Vc {
            core,
            state: VcState::Thinking { until: 0 },
        });
    }

    let mut tracks: Vec<RidTrack> = (0..cfg.resources)
        .map(|rid| RidTrack {
            row: ResourceRow {
                rid,
                ..Default::default()
            },
            release_mark: None,
        })
        .collect();
    let mut handover = LatencySamples::new();

    let start = transport.now_us();
    let end = start + cfg.duration_us;
    // Drain phase after the measured window lets in-flight operations
    // resolve so the cluster is left clean.
    let hard_stop = end + cfg.duration_us / 4 + 1_000_000;

    loop {
        let now = transport.now_us();
        if now >= hard_stop {
            break;
        }
        let measuring = now < end;
        let mut all_done = true;

        for vi in 0..vcs.len() {
            let vc = &mut vcs[vi];
            vc.core.poll();
            // Consume events first.
            while let Some(ev) = vc.core.next_event() {
                match ev {
                    ClientEvent::Granted { rid, req } => {
                        if let VcState::Waiting {
                            rid: wr,
                            req: wq,
                            issued_at,
                        } = vc.state
                        {
                            if wr == rid.0 && wq == req {
                                let t = &mut tracks[rid.0 as usize];
                                if measuring {
                                    t.row.grants += 1;
                                    t.row.latency.push((now - issued_at) as f64);
                                    if let Some(r0) = t.release_mark.take() {
                                        handover.push((now - r0) as f64);
                                    }
                                } else {
                                    t.release_mark = None;
                                }
                                vc.state = VcState::Holding {
                                    rid: rid.0,
                                    req,
                                    until: now + cfg.hold_us,
                                };
                            }
                        }
                    }
                    ClientEvent::Aborted { rid, req } | ClientEvent::Rejected { rid, req, .. } => {
                        if let VcState::Waiting {
                            rid: wr, req: wq, ..
                        } = vc.state
                        {
                            if wr == rid.0 && wq == req {
                                if measuring {
                                    tracks[rid.0 as usize].row.aborts += 1;
                                }
                                vc.state = VcState::Thinking {
                                    until: now + exp_sample(&mut rng, cfg.think_mean_us),
                                };
                            }
                        }
                    }
                    ClientEvent::Released { .. } => {
                        if let VcState::Releasing = vc.state {
                            vc.state = if measuring {
                                VcState::Thinking {
                                    until: now + exp_sample(&mut rng, cfg.think_mean_us),
                                }
                            } else {
                                VcState::Done
                            };
                        }
                    }
                    ClientEvent::Disconnected => {
                        vc.state = VcState::Done;
                    }
                    ClientEvent::Welcome { .. } => {}
                }
            }
            // Advance timed states.
            match vc.state {
                VcState::Thinking { until } => {
                    if !measuring {
                        vc.state = VcState::Done;
                    } else if until <= now {
                        let rid = zipf_pick(&mut rng, &weights);
                        let req = vc.core.acquire(ResourceId(rid), cfg.wait_us);
                        tracks[rid as usize].row.acquires += 1;
                        vc.state = VcState::Waiting {
                            rid,
                            req,
                            issued_at: now,
                        };
                    }
                }
                VcState::Holding { rid, req, until } if until <= now => {
                    // A handover sample only exists when someone else
                    // is already queued behind this lock.
                    let contended = vcs.iter().enumerate().any(|(oi, o)| {
                        oi != vi
                            && matches!(o.state, VcState::Waiting { rid: orr, .. } if orr == rid)
                    });
                    let vc = &mut vcs[vi];
                    vc.core.release(ResourceId(rid), req);
                    if contended && measuring {
                        tracks[rid as usize].release_mark = Some(now);
                    }
                    vc.state = VcState::Releasing;
                }
                _ => {}
            }
            if !matches!(vcs[vi].state, VcState::Done) {
                all_done = false;
            }
        }

        if !measuring && all_done {
            break;
        }
        transport.wait(Some(now + 500));
    }

    let duration_us = transport
        .now_us()
        .saturating_sub(start)
        .min(cfg.duration_us);
    Ok(LoadReport {
        label: cfg.label.clone(),
        duration_us,
        clients: cfg.clients,
        rows: tracks.into_iter().map(|t| t.row).collect(),
        handover,
    })
}
