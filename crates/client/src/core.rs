//! The poll-driven client state machine.
//!
//! [`ClientCore`] owns one connection to one site and translates between
//! the framed wire protocol and a queue of [`ClientEvent`]s. It never
//! blocks and never looks at a clock: callers decide when to
//! [`poll`](ClientCore::poll) and how long to wait between polls, which
//! is what lets the deterministic harness multiplex dozens of clients
//! under a virtual clock while `qmxctl` runs the same type over TCP.

use std::collections::VecDeque;
use std::io;

use qmx_core::wire::Wire;
use qmx_core::{ResourceId, SiteId};
use qmx_runtime::frame::{write_frame, FrameBuf};
use qmx_runtime::proto::{ClientMsg, Hello, RejectReason, ServerMsg};
use qmx_runtime::transport::{Conn, Transport};

/// Something the server told this client, in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientEvent {
    /// Handshake completed; the session is attached to `site`.
    Welcome {
        /// The serving site.
        site: SiteId,
    },
    /// Acquire `req` was granted the lock on `rid`.
    Granted {
        /// Resource granted.
        rid: ResourceId,
        /// Request token.
        req: u64,
    },
    /// Release of `req` completed.
    Released {
        /// Resource released.
        rid: ResourceId,
        /// Request token.
        req: u64,
    },
    /// Pending acquire `req` was withdrawn (deadline, abort, teardown).
    Aborted {
        /// Resource of the withdrawn acquire.
        rid: ResourceId,
        /// Request token.
        req: u64,
    },
    /// The server refused the request at the session level.
    Rejected {
        /// Resource named by the offending request.
        rid: ResourceId,
        /// Request token.
        req: u64,
        /// Why.
        reason: RejectReason,
    },
    /// The connection died; no further events will arrive.
    Disconnected,
}

/// One client session over any [`Conn`]. See the module docs.
pub struct ClientCore<C: Conn> {
    conn: C,
    fb: FrameBuf,
    id: u64,
    next_req: u64,
    events: VecDeque<ClientEvent>,
    dead: bool,
    reported_dead: bool,
    site: Option<SiteId>,
    scratch: Vec<u8>,
}

impl<C: Conn> ClientCore<C> {
    /// Wraps an established connection and queues the handshake frame.
    pub fn new(mut conn: C, id: u64) -> Self {
        let mut scratch = Vec::new();
        let payload = Hello::Client { id }.to_bytes();
        write_frame(&mut scratch, &payload);
        let dead = conn.send_bytes(&scratch).is_err();
        ClientCore {
            conn,
            fb: FrameBuf::new(),
            id,
            next_req: 1,
            events: VecDeque::new(),
            dead,
            reported_dead: false,
            site: None,
            scratch,
        }
    }

    /// Dials `addr` on `transport` and performs the handshake send.
    pub fn connect<T: Transport<Conn = C>>(
        transport: &mut T,
        addr: &str,
        id: u64,
    ) -> io::Result<Self> {
        Ok(Self::new(transport.connect(addr)?, id))
    }

    /// The id this client identified itself with.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The serving site, once the `Welcome` has arrived.
    pub fn site(&self) -> Option<SiteId> {
        self.site
    }

    /// True once the connection has died.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Sends an acquire for `rid`, returning its request token.
    /// `wait_us`, if set, bounds how long the site may queue the request
    /// (measured from receipt) before answering with an abort.
    pub fn acquire(&mut self, rid: ResourceId, wait_us: Option<u64>) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        self.send(ClientMsg::Acquire { rid, req, wait_us });
        req
    }

    /// Sends a release of the held lock `req` on `rid`.
    pub fn release(&mut self, rid: ResourceId, req: u64) {
        self.send(ClientMsg::Release { rid, req });
    }

    /// Sends an abort of the pending acquire `req` on `rid`.
    pub fn abort(&mut self, rid: ResourceId, req: u64) {
        self.send(ClientMsg::Abort { rid, req });
    }

    fn send(&mut self, msg: ClientMsg) {
        if self.dead {
            return;
        }
        self.scratch.clear();
        let payload = msg.to_bytes();
        write_frame(&mut self.scratch, &payload);
        if self.conn.send_bytes(&self.scratch).is_err() {
            self.dead = true;
        }
    }

    /// Pumps the connection: reads whatever arrived, decodes complete
    /// frames into events, flushes pending writes. Call repeatedly.
    pub fn poll(&mut self) {
        if self.dead {
            self.mark_disconnected();
            return;
        }
        if self.conn.recv_bytes(self.fb.buf_mut()).is_err() {
            self.dead = true;
        }
        loop {
            match self.fb.next_frame() {
                Ok(Some(frame)) => match ServerMsg::from_bytes(&frame) {
                    Ok(msg) => self.events.push_back(self.translate(msg)),
                    Err(_) => {
                        self.dead = true;
                        break;
                    }
                },
                Ok(None) => break,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if !self.dead && self.conn.flush().is_err() {
            self.dead = true;
        }
        if self.dead {
            self.mark_disconnected();
        }
    }

    fn translate(&self, msg: ServerMsg) -> ClientEvent {
        match msg {
            ServerMsg::Welcome { site } => ClientEvent::Welcome { site },
            ServerMsg::Granted { rid, req } => ClientEvent::Granted { rid, req },
            ServerMsg::Released { rid, req } => ClientEvent::Released { rid, req },
            ServerMsg::Aborted { rid, req } => ClientEvent::Aborted { rid, req },
            ServerMsg::Rejected { rid, req, reason } => ClientEvent::Rejected { rid, req, reason },
        }
    }

    fn mark_disconnected(&mut self) {
        if !self.reported_dead {
            self.reported_dead = true;
            self.events.push_back(ClientEvent::Disconnected);
        }
    }

    /// Next pending event, if any. `Welcome` updates [`site`](Self::site)
    /// as a side effect.
    pub fn next_event(&mut self) -> Option<ClientEvent> {
        let ev = self.events.pop_front();
        if let Some(ClientEvent::Welcome { site }) = ev {
            self.site = Some(site);
        }
        ev
    }

    /// Drains all pending events.
    pub fn drain_events(&mut self) -> Vec<ClientEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        while let Some(ev) = self.next_event() {
            out.push(ev);
        }
        out
    }
}
