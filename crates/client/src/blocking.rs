//! Blocking convenience wrapper over [`ClientCore`].
//!
//! For real transports (TCP, UDS) where the caller just wants
//! `acquire → critical section → release` with ordinary blocking calls.
//! Each operation loops `poll`/[`Transport::wait`] until its response
//! arrives. Deterministic tests do not use this type — they multiplex
//! [`ClientCore`]s directly under the harness clock.

use std::io;

use qmx_core::ResourceId;
use qmx_runtime::proto::RejectReason;
use qmx_runtime::transport::Transport;

use crate::core::{ClientCore, ClientEvent};

/// How a blocking acquire resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Lock granted; release it with this token.
    Granted {
        /// Request token to pass to `release`.
        req: u64,
    },
    /// Withdrawn by the server (deadline passed).
    Aborted,
    /// Refused at the session level.
    Rejected(RejectReason),
    /// The connection died while waiting.
    Disconnected,
}

/// A blocking client over any real [`Transport`].
pub struct BlockingClient<T: Transport> {
    transport: T,
    core: ClientCore<T::Conn>,
}

impl<T: Transport> BlockingClient<T> {
    /// Dials `addr` and waits for the server's `Welcome`.
    pub fn connect(mut transport: T, addr: &str, id: u64) -> io::Result<Self> {
        let core = ClientCore::connect(&mut transport, addr, id)?;
        let mut me = BlockingClient { transport, core };
        while me.core.site().is_none() && !me.core.is_dead() {
            me.pump(None);
        }
        if me.core.is_dead() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "connection died during handshake",
            ));
        }
        Ok(me)
    }

    /// Transport clock, microseconds.
    pub fn now_us(&mut self) -> u64 {
        self.transport.now_us()
    }

    /// Acquires `rid`, blocking until grant or abort. `wait_us`, if set,
    /// bounds the server-side queueing time; the server aborts the
    /// request once the budget is spent.
    pub fn acquire(&mut self, rid: ResourceId, wait_us: Option<u64>) -> AcquireOutcome {
        let req = self.core.acquire(rid, wait_us);
        loop {
            self.pump(None);
            while let Some(ev) = self.core.next_event() {
                match ev {
                    ClientEvent::Granted { rid: r, req: q } if r == rid && q == req => {
                        return AcquireOutcome::Granted { req }
                    }
                    ClientEvent::Aborted { rid: r, req: q } if r == rid && q == req => {
                        return AcquireOutcome::Aborted
                    }
                    ClientEvent::Rejected {
                        rid: r,
                        req: q,
                        reason,
                    } if r == rid && q == req => return AcquireOutcome::Rejected(reason),
                    ClientEvent::Disconnected => return AcquireOutcome::Disconnected,
                    _ => {}
                }
            }
            if self.core.is_dead() {
                return AcquireOutcome::Disconnected;
            }
        }
    }

    /// Releases a held lock, blocking until the server confirms. Returns
    /// `false` if the connection died first.
    pub fn release(&mut self, rid: ResourceId, req: u64) -> bool {
        self.core.release(rid, req);
        loop {
            self.pump(None);
            while let Some(ev) = self.core.next_event() {
                match ev {
                    ClientEvent::Released { rid: r, req: q } if r == rid && q == req => {
                        return true
                    }
                    ClientEvent::Disconnected => return false,
                    _ => {}
                }
            }
            if self.core.is_dead() {
                return false;
            }
        }
    }

    fn pump(&mut self, until: Option<u64>) {
        self.core.poll();
        if !self.core.is_dead() {
            self.transport.wait(until);
            self.core.poll();
        }
    }
}
