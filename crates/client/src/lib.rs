//! # qmx-client
//!
//! Client side of the qmx networked lock service, plus the deterministic
//! cluster harness the end-to-end tests drive.
//!
//! * [`core`] — [`ClientCore`], the sans-I/O-scheduling client state
//!   machine: poll-driven, transport-agnostic, no blocking, no clocks of
//!   its own. This is the piece both the tests (over the loopback) and
//!   the blocking wrapper (over TCP/UDS) share.
//! * [`blocking`] — [`BlockingClient`], a thin convenience wrapper that
//!   loops `poll`/`Transport::wait` until an operation resolves; what
//!   `qmxctl bench-load` and short scripts use against real sockets.
//! * [`mod@bench`] — the open-loop load engine behind `qmxctl bench-load`:
//!   many virtual clients over one poll loop, exponential think times,
//!   zipfian resource choice, per-resource acquire-latency percentiles
//!   and wire-level handover (sync-delay) sampling.
//! * [`harness`] — [`LoopCluster`], an entire cluster plus its clients on
//!   the in-process loopback transport under one virtual clock, stepped
//!   deterministically: the substrate of `tests/runtime_e2e.rs` and the
//!   proptest suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod blocking;
pub mod core;
pub mod harness;

pub use self::core::{ClientCore, ClientEvent};
pub use bench::{run_bench, BenchConfig};
pub use blocking::{AcquireOutcome, BlockingClient};
pub use harness::{ClusterConfig, LoopCluster};
