//! Deterministic cluster harness: a whole cluster and its clients on the
//! in-process loopback transport, under one virtual clock.
//!
//! [`LoopCluster`] owns N [`Node`]s (one per site, exactly the objects
//! `qmxctl serve` runs over TCP) and any number of [`ClientCore`]s, all
//! sharing one [`LoopNet`]. Time moves only through
//! [`LoopCluster::run_for`], which repeatedly polls every node and client
//! at the current virtual instant, finds the next moment anything becomes
//! ready (a byte delivery, a protocol timer, a reconnect retry, a
//! deadline), and jumps the clock there. No real ports, no threads, no
//! sleeps — a test run is a pure function of its inputs, so event
//! counters can be asserted *exactly*.
//!
//! Fault injection is structural: [`kill`](LoopCluster::kill) drops a
//! node (closing its listener and every connection it owns, exactly what
//! a crashed process does to its sockets), and
//! [`restart`](LoopCluster::restart) rebuilds it with a bumped
//! incarnation so the stack's rejoin protocol runs.

use std::io;

use qmx_core::{Config, DetectorConfig, SiteId, TransportConfig};
use qmx_runtime::loopback::{LoopConn, LoopNet, LoopTransport};
use qmx_runtime::node::{Node, NodeConfig, NodeCounters};
use qmx_runtime::stack::{build_stack, ServeStack, StackConfig};

use crate::core::{ClientCore, ClientEvent};

/// Cluster shape and tuning for a deterministic run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-site request quorums; `quorums.len()` is the cluster size.
    pub quorums: Vec<Vec<SiteId>>,
    /// Delay-optimal knobs (set `forwarding_enabled=false` for the `2T`
    /// baseline).
    pub algo: Config,
    /// Ack/retransmit tuning, in virtual microseconds.
    pub transport: TransportConfig,
    /// Heartbeat/suspicion tuning, in virtual microseconds.
    pub detector: DetectorConfig,
    /// One-way latency of every loopback link, virtual microseconds.
    pub latency_us: u64,
    /// Peer reconnect backoff floor.
    pub reconnect_min_us: u64,
    /// Peer reconnect backoff cap.
    pub reconnect_max_us: u64,
    /// Enable §6 quorum reconstruction (see
    /// [`StackConfig::majority_reconstruct`]).
    pub majority_reconstruct: bool,
}

impl ClusterConfig {
    /// A cluster of `n` sites with ring-majority quorums (site `i` uses
    /// `{i, i+1, …, i+⌈(n+1)/2⌉-1} mod n`, pairwise intersecting), 500 µs
    /// links, and timers sized so suspicion and retransmission play out
    /// within a few virtual milliseconds.
    pub fn ring_majority(n: u32) -> Self {
        let k = (n / 2 + 1) as usize;
        let quorums = (0..n)
            .map(|i| (0..k as u32).map(|d| SiteId((i + d) % n)).collect())
            .collect();
        ClusterConfig {
            quorums,
            algo: Config::default(),
            transport: TransportConfig {
                rto_initial: 8_000,
                rto_max: 64_000,
                max_retries: 40,
            },
            detector: DetectorConfig {
                hb_interval: 2_000,
                hb_timeout: 10_000,
                rejoin_wait: 5_000,
                fail_confirm: 50_000,
            },
            latency_us: 500,
            reconnect_min_us: 1_000,
            reconnect_max_us: 16_000,
            majority_reconstruct: true,
        }
    }

    fn n(&self) -> u32 {
        self.quorums.len() as u32
    }
}

/// The loopback cluster. See the module docs.
pub struct LoopCluster {
    net: LoopNet,
    cfg: ClusterConfig,
    nodes: Vec<Option<Node<LoopTransport, ServeStack>>>,
    incarnations: Vec<u64>,
    clients: Vec<ClientCore<LoopConn>>,
    next_client_id: u64,
}

fn addr_of(site: u32) -> String {
    format!("site-{site}")
}

impl LoopCluster {
    /// Boots every site. Panics only on harness misuse (duplicate bind),
    /// which cannot happen from a fresh config.
    pub fn new(cfg: ClusterConfig) -> Self {
        let net = LoopNet::new(cfg.latency_us);
        let n = cfg.n();
        let mut cluster = LoopCluster {
            net,
            incarnations: vec![0; n as usize],
            nodes: (0..n).map(|_| None).collect(),
            clients: Vec::new(),
            next_client_id: 1,
            cfg,
        };
        for site in 0..n {
            cluster.boot(site).expect("fresh cluster boot");
        }
        cluster
    }

    fn boot(&mut self, site: u32) -> io::Result<()> {
        let n = self.cfg.n();
        let stack_cfg = StackConfig {
            sites: (0..n).map(SiteId).collect(),
            quorum: self.cfg.quorums[site as usize].clone(),
            algo: self.cfg.algo.clone(),
            transport: self.cfg.transport,
            detector: self.cfg.detector,
            majority_reconstruct: self.cfg.majority_reconstruct,
        };
        let proto = build_stack(SiteId(site), &stack_cfg);
        let mut node_cfg = NodeConfig::new(
            SiteId(site),
            addr_of(site),
            (0..n)
                .filter(|&p| p != site)
                .map(|p| (SiteId(p), addr_of(p)))
                .collect(),
        );
        node_cfg.incarnation = self.incarnations[site as usize];
        node_cfg.reconnect_min_us = self.cfg.reconnect_min_us;
        node_cfg.reconnect_max_us = self.cfg.reconnect_max_us;
        let node = Node::new(self.net.transport(), proto, node_cfg)?;
        self.nodes[site as usize] = Some(node);
        Ok(())
    }

    /// The shared virtual network (for clock reads or extra connections).
    pub fn net(&self) -> &LoopNet {
        &self.net
    }

    /// Current virtual time, microseconds.
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    /// The node serving `site`, if alive.
    pub fn node(&self, site: u32) -> Option<&Node<LoopTransport, ServeStack>> {
        self.nodes[site as usize].as_ref()
    }

    /// Counters of `site`'s node (panics if the site is down).
    pub fn counters(&self, site: u32) -> NodeCounters {
        self.nodes[site as usize]
            .as_ref()
            .expect("site is down")
            .counters()
    }

    /// Crashes `site`: the node is dropped, closing its listener and all
    /// of its connections mid-flight.
    pub fn kill(&mut self, site: u32) {
        self.nodes[site as usize] = None;
    }

    /// Restarts a killed `site` with a bumped incarnation; the stack
    /// announces its rejoin to peers.
    pub fn restart(&mut self, site: u32) {
        assert!(
            self.nodes[site as usize].is_none(),
            "restart of a live site"
        );
        self.incarnations[site as usize] += 1;
        self.boot(site).expect("rebind after kill");
    }

    /// Connects a new client to `site`, returning its handle.
    pub fn add_client(&mut self, site: u32) -> usize {
        let id = self.next_client_id;
        self.next_client_id += 1;
        let mut t = self.net.transport();
        let core = ClientCore::connect(&mut t, &addr_of(site), id).expect("connect to a live site");
        self.clients.push(core);
        self.clients.len() - 1
    }

    /// The client behind `handle`.
    pub fn client(&mut self, handle: usize) -> &mut ClientCore<LoopConn> {
        &mut self.clients[handle]
    }

    /// Polls every node and client once at the current instant. Returns
    /// the earliest pending node wake-up, if any.
    fn settle(&mut self) -> Option<u64> {
        let mut wake: Option<u64> = None;
        for slot in self.nodes.iter_mut() {
            if let Some(node) = slot.as_mut() {
                if let Some(w) = node.poll() {
                    wake = Some(match wake {
                        Some(cur) if cur <= w => cur,
                        _ => w,
                    });
                }
            }
        }
        for c in self.clients.iter_mut() {
            c.poll();
        }
        wake
    }

    /// Advances virtual time by `dur_us`, executing everything that
    /// becomes due: byte deliveries, protocol timers, reconnects,
    /// deadlines. Deterministic: same inputs, same final state.
    pub fn run_for(&mut self, dur_us: u64) {
        let end = self.net.now().saturating_add(dur_us);
        let mut stuck = 0u32;
        loop {
            let wake = self.settle();
            let now = self.net.now();
            let mut next = self.net.next_event();
            if let Some(w) = wake {
                next = Some(match next {
                    Some(e) if e <= w => e,
                    _ => w,
                });
            }
            match next {
                Some(t) if t <= end => {
                    if t <= now {
                        // Work is due *now*; settle again. If the same
                        // instant refuses to drain (a scheduling bug),
                        // nudge the clock rather than spin forever.
                        stuck += 1;
                        if stuck > 64 {
                            self.net.advance_to(now + 1);
                            stuck = 0;
                        }
                        continue;
                    }
                    stuck = 0;
                    self.net.advance_to(t);
                }
                _ => {
                    if now < end {
                        self.net.advance_to(end);
                        self.settle();
                    }
                    return;
                }
            }
        }
    }

    /// Drains all pending events of client `handle`.
    pub fn events(&mut self, handle: usize) -> Vec<ClientEvent> {
        self.clients[handle].drain_events()
    }
}
