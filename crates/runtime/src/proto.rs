//! Connection-level protocol: handshake and the client-facing lock API.
//!
//! Every connection a site accepts starts with one [`Hello`] frame that
//! classifies it: a **peer** link carrying the protocol stack's
//! `HbMsg<Packet<ResMsg<Msg>>>` traffic, or a **client** session carrying
//! [`ClientMsg`]/[`ServerMsg`] traffic. Peers identify themselves with
//! their site id and incarnation (so a restarted site is recognizable);
//! clients bring an arbitrary id used only for diagnostics.
//!
//! The client API is deliberately tiny — acquire (with an optional wait
//! budget), release, abort — and every request names a
//! client-chosen request token `req` echoed in the matching [`ServerMsg`],
//! so responses to pipelined operations on different resources cannot be
//! confused.

use qmx_core::wire::{Reader, Wire, WireError};
use qmx_core::{ResourceId, SiteId};

/// First frame on every inbound connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hello {
    /// A peer site's protocol link.
    Peer {
        /// The dialing site.
        site: SiteId,
        /// Its crash-recovery incarnation number.
        incarnation: u64,
    },
    /// A client session.
    Client {
        /// Client-chosen identifier, for diagnostics only.
        id: u64,
    },
}

impl Wire for Hello {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Hello::Peer { site, incarnation } => {
                out.push(0);
                site.encode(out);
                incarnation.encode(out);
            }
            Hello::Client { id } => {
                out.push(1);
                id.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Hello::Peer {
                site: SiteId::decode(r)?,
                incarnation: r.u64()?,
            },
            1 => Hello::Client { id: r.u64()? },
            tag => return Err(WireError::BadTag { what: "Hello", tag }),
        })
    }
}

/// Client → site requests. `req` is a client-chosen token echoed back in
/// the matching [`ServerMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientMsg {
    /// Request the lock on `rid`. With `wait_us` set, the site aborts the
    /// wait once that many microseconds have passed since receipt and
    /// answers [`ServerMsg::Aborted`]. The budget is *relative* on the
    /// wire because client and site clocks have different origins; the
    /// site pins it to its own clock the moment the frame arrives.
    Acquire {
        /// Resource to lock.
        rid: ResourceId,
        /// Client request token.
        req: u64,
        /// Optional wait budget, microseconds from receipt.
        wait_us: Option<u64>,
    },
    /// Release a held lock.
    Release {
        /// Resource to unlock.
        rid: ResourceId,
        /// Token of the acquire being released.
        req: u64,
    },
    /// Withdraw a pending (not yet granted) acquire.
    Abort {
        /// Resource of the pending acquire.
        rid: ResourceId,
        /// Token of the acquire being withdrawn.
        req: u64,
    },
}

impl ClientMsg {
    /// The `(rid, req)` pair this request addresses.
    pub fn key(&self) -> (ResourceId, u64) {
        match *self {
            ClientMsg::Acquire { rid, req, .. }
            | ClientMsg::Release { rid, req }
            | ClientMsg::Abort { rid, req } => (rid, req),
        }
    }
}

impl Wire for ClientMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientMsg::Acquire { rid, req, wait_us } => {
                out.push(0);
                rid.encode(out);
                req.encode(out);
                wait_us.encode(out);
            }
            ClientMsg::Release { rid, req } => {
                out.push(1);
                rid.encode(out);
                req.encode(out);
            }
            ClientMsg::Abort { rid, req } => {
                out.push(2);
                rid.encode(out);
                req.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => ClientMsg::Acquire {
                rid: ResourceId::decode(r)?,
                req: r.u64()?,
                wait_us: Option::decode(r)?,
            },
            1 => ClientMsg::Release {
                rid: ResourceId::decode(r)?,
                req: r.u64()?,
            },
            2 => ClientMsg::Abort {
                rid: ResourceId::decode(r)?,
                req: r.u64()?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "ClientMsg",
                    tag,
                })
            }
        })
    }
}

/// Why a client request was rejected outright (protocol misuse, not a
/// transient condition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Release/abort named a lock this session does not hold or wait for.
    NotHeld,
    /// Acquire on a resource this session already holds or waits for.
    Busy,
    /// Abort arrived after the grant was already issued; the client owns
    /// the lock and must release it.
    AlreadyGranted,
}

impl Wire for RejectReason {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            RejectReason::NotHeld => 0,
            RejectReason::Busy => 1,
            RejectReason::AlreadyGranted => 2,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => RejectReason::NotHeld,
            1 => RejectReason::Busy,
            2 => RejectReason::AlreadyGranted,
            tag => {
                return Err(WireError::BadTag {
                    what: "RejectReason",
                    tag,
                })
            }
        })
    }
}

/// Site → client responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMsg {
    /// Handshake accepted; identifies the serving site.
    Welcome {
        /// The site this session is attached to.
        site: SiteId,
    },
    /// The lock on `rid` is granted to request `req`.
    Granted {
        /// Resource granted.
        rid: ResourceId,
        /// Token of the granted acquire.
        req: u64,
    },
    /// The release of `req` completed.
    Released {
        /// Resource released.
        rid: ResourceId,
        /// Token of the released acquire.
        req: u64,
    },
    /// The pending acquire `req` was withdrawn — by client abort, client
    /// deadline, or session teardown — before being granted.
    Aborted {
        /// Resource of the withdrawn acquire.
        rid: ResourceId,
        /// Token of the withdrawn acquire.
        req: u64,
    },
    /// The request was malformed at the session level.
    Rejected {
        /// Resource named by the offending request.
        rid: ResourceId,
        /// Token of the offending request.
        req: u64,
        /// Why it was rejected.
        reason: RejectReason,
    },
}

impl Wire for ServerMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServerMsg::Welcome { site } => {
                out.push(0);
                site.encode(out);
            }
            ServerMsg::Granted { rid, req } => {
                out.push(1);
                rid.encode(out);
                req.encode(out);
            }
            ServerMsg::Released { rid, req } => {
                out.push(2);
                rid.encode(out);
                req.encode(out);
            }
            ServerMsg::Aborted { rid, req } => {
                out.push(3);
                rid.encode(out);
                req.encode(out);
            }
            ServerMsg::Rejected { rid, req, reason } => {
                out.push(4);
                rid.encode(out);
                req.encode(out);
                reason.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => ServerMsg::Welcome {
                site: SiteId::decode(r)?,
            },
            1 => ServerMsg::Granted {
                rid: ResourceId::decode(r)?,
                req: r.u64()?,
            },
            2 => ServerMsg::Released {
                rid: ResourceId::decode(r)?,
                req: r.u64()?,
            },
            3 => ServerMsg::Aborted {
                rid: ResourceId::decode(r)?,
                req: r.u64()?,
            },
            4 => ServerMsg::Rejected {
                rid: ResourceId::decode(r)?,
                req: r.u64()?,
                reason: RejectReason::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "ServerMsg",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        let hellos = [
            Hello::Peer {
                site: SiteId(3),
                incarnation: 2,
            },
            Hello::Client { id: 99 },
        ];
        for h in hellos {
            assert_eq!(Hello::from_bytes(&h.to_bytes()).unwrap(), h);
        }
        let cmsgs = [
            ClientMsg::Acquire {
                rid: ResourceId(1),
                req: 7,
                wait_us: Some(123_456),
            },
            ClientMsg::Acquire {
                rid: ResourceId(1),
                req: 8,
                wait_us: None,
            },
            ClientMsg::Release {
                rid: ResourceId(2),
                req: 7,
            },
            ClientMsg::Abort {
                rid: ResourceId(3),
                req: 9,
            },
        ];
        for m in cmsgs {
            assert_eq!(ClientMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
        let smsgs = [
            ServerMsg::Welcome { site: SiteId(4) },
            ServerMsg::Granted {
                rid: ResourceId(1),
                req: 7,
            },
            ServerMsg::Released {
                rid: ResourceId(1),
                req: 7,
            },
            ServerMsg::Aborted {
                rid: ResourceId(1),
                req: 7,
            },
            ServerMsg::Rejected {
                rid: ResourceId(1),
                req: 7,
                reason: RejectReason::AlreadyGranted,
            },
        ];
        for m in smsgs {
            assert_eq!(ServerMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn bad_tags_error_cleanly() {
        assert!(Hello::from_bytes(&[9, 0, 0, 0, 0]).is_err());
        assert!(ClientMsg::from_bytes(&[77]).is_err());
        assert!(ServerMsg::from_bytes(&[200]).is_err());
        assert!(RejectReason::from_bytes(&[3]).is_err());
    }
}
