//! A live multi-threaded runtime: each site is an OS thread, links are
//! crossbeam channels routed through a latency-injecting router thread.
//!
//! The same [`Protocol`] implementations that run under the deterministic
//! simulator run here over real threads and wall-clock delays — evidence
//! that the state machines do not depend on simulator artifacts. A shared
//! safety monitor asserts mutual exclusion on every entry.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use qmx_core::{
    DetectorCounters, Effects, FaultVerdict, LinkFaults, LossModel, Outage, Protocol, SiteId,
    TransportCounters,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Runtime options.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// One-way link latency applied to every message.
    pub latency: Duration,
    /// How long a site holds the CS once entered.
    pub hold: Duration,
    /// How many CS executions each site performs.
    pub rounds: usize,
    /// Pause between a site's releases and its next request.
    pub think: Duration,
    /// Crash injection: `(site, when)` pairs — the site stops dead at
    /// `when` after start; when [`NetOptions::oracle_notices`] is on, every
    /// survivor receives a failure notice `detect_latency` later (§6's
    /// `failure(i)`).
    pub crashes: Vec<(SiteId, Duration)>,
    /// Recovery injection: `(site, when)` pairs — a previously crashed
    /// site restarts at `when` with **fresh** protocol state (cloned from
    /// its pre-start instance) and runs its `on_recover` hook. Under the
    /// [`qmx_core::Detector`] wrapper that announces a rejoin to every
    /// peer. Each entry must come after the matching crash.
    pub recoveries: Vec<(SiteId, Duration)>,
    /// Whether crashes are followed by broadcast oracle failure notices
    /// (the paper's §6 model). Disable when the sites run under the
    /// heartbeat [`qmx_core::Detector`] wrapper: survivors then learn of
    /// the crash only from missed heartbeats.
    pub oracle_notices: bool,
    /// Failure-detector latency for crash notices (oracle mode only).
    pub detect_latency: Duration,
    /// Wire-message fault model applied by the router (same seeded models
    /// as the simulator; wrap the sites in
    /// [`qmx_core::Reliable`] to survive anything but
    /// [`LossModel::None`]).
    pub loss: LossModel,
    /// Transient link outages; times are **microseconds since run start**
    /// (the runtime's driver clock, as passed to `Protocol::set_now`).
    pub outages: Vec<Outage>,
    /// Seed for the router's fault-injection RNG.
    pub loss_seed: u64,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            latency: Duration::from_millis(2),
            hold: Duration::from_micros(500),
            rounds: 3,
            think: Duration::from_millis(1),
            crashes: Vec::new(),
            recoveries: Vec::new(),
            oracle_notices: true,
            detect_latency: Duration::from_millis(10),
            loss: LossModel::None,
            outages: Vec::new(),
            loss_seed: 0xFA17,
        }
    }
}

/// Outcome of a live run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Total CS executions observed (should be `n × rounds`).
    pub completed: usize,
    /// Total wire messages routed.
    pub messages: u64,
    /// Messages the fault injector dropped.
    pub injected_drops: u64,
    /// Messages the fault injector duplicated.
    pub injected_dups: u64,
    /// Aggregated reliable-transport counters over all sites (all zero
    /// when the protocols run bare).
    pub transport: TransportCounters,
    /// Aggregated failure-detector counters over all sites (all zero when
    /// the protocols run without the detector wrapper).
    pub detector: DetectorCounters,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-site CS counts.
    pub per_site: Vec<usize>,
}

/// Wire messages per CS execution in a live outcome.
pub fn messages_per_cs(outcome: &RunOutcome) -> f64 {
    if outcome.completed == 0 {
        0.0
    } else {
        outcome.messages as f64 / outcome.completed as f64
    }
}

struct Envelope<M> {
    from: SiteId,
    to: SiteId,
    msg: M,
}

/// What a site thread can receive: a protocol message, a failure notice,
/// the order to crash (stop processing entirely), or the order to restart
/// with fresh state after a crash.
enum Inbox<M> {
    Net(Envelope<M>),
    Failed(SiteId),
    Die,
    Recover,
}

struct Delayed<M> {
    due: Instant,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl<M> Eq for Delayed<M> {}
impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Delayed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest due first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// Shared safety monitor: panics the offending thread if two sites are in
/// the CS at once.
#[derive(Default)]
struct CsMonitor {
    occupant: Mutex<Option<SiteId>>,
}

impl CsMonitor {
    fn enter(&self, site: SiteId) {
        let mut occ = self.occupant.lock();
        assert!(
            occ.is_none(),
            "MUTUAL EXCLUSION VIOLATED: {site} entered while {:?} inside",
            *occ
        );
        *occ = Some(site);
    }

    fn exit(&self, site: SiteId) {
        let mut occ = self.occupant.lock();
        assert_eq!(*occ, Some(site), "exit without matching entry");
        *occ = None;
    }
}

/// Runs `sites` over real threads until every site not scheduled to
/// crash permanently completes `opts.rounds` CS executions. Returns the
/// aggregated outcome.
///
/// Crash injection: at the scheduled instant the victim's thread stops
/// processing entirely. In oracle mode ([`NetOptions::oracle_notices`],
/// the default), `detect_latency` later every survivor receives
/// [`Protocol::on_site_failure`] — the paper's §6 `failure(i)`. With the
/// oracle off, no notices are broadcast: survivors must discover the crash
/// themselves (wrap the sites in [`qmx_core::Detector`] so missed
/// heartbeats produce the suspicion).
///
/// Recovery injection ([`NetOptions::recoveries`]): the crashed site's
/// thread restarts with a pristine clone of its protocol state and runs
/// `on_start` + `on_recover`; a site with a scheduled recovery counts
/// toward the completion target again (it is expected to finish its
/// remaining rounds after rejoining).
///
/// # Panics
///
/// Panics (in a site thread, propagated on join) if mutual exclusion is
/// ever violated, or if the run makes no progress for 60 seconds.
pub fn run_cluster<P>(sites: Vec<P>, opts: NetOptions) -> RunOutcome
where
    P: Protocol + Clone + Send + 'static,
{
    let n = sites.len();
    assert!(n > 0, "need at least one site");
    assert!(
        opts.crashes.iter().all(|(s, _)| s.index() < n),
        "crash schedule references unknown site"
    );
    for &(site, at) in &opts.recoveries {
        let crash_at = opts
            .crashes
            .iter()
            .find(|&&(v, _)| v == site)
            .map(|&(_, t)| t)
            .expect("recovery scheduled for a site that never crashes");
        assert!(at > crash_at, "recovery must come after the crash");
    }
    let start = Instant::now();

    // Channels: router input, per-site inboxes.
    let (router_tx, router_rx) = unbounded::<Envelope<P::Msg>>();
    let mut site_txs: Vec<Sender<Inbox<P::Msg>>> = Vec::with_capacity(n);
    let mut site_rxs: Vec<Receiver<Inbox<P::Msg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        site_txs.push(tx);
        site_rxs.push(rx);
    }

    let monitor = Arc::new(CsMonitor::default());
    let done = Arc::new(AtomicBool::new(false));
    let messages = Arc::new(AtomicU64::new(0));
    let injected_drops = Arc::new(AtomicU64::new(0));
    let injected_dups = Arc::new(AtomicU64::new(0));
    let completed_total = Arc::new(AtomicU64::new(0));
    let crashed: Arc<Mutex<std::collections::BTreeSet<SiteId>>> =
        Arc::new(Mutex::new(std::collections::BTreeSet::new()));

    // Router thread: applies latency; constant latency plus the heap's
    // arrival-sequence tie-break preserves per-link FIFO. Messages to
    // crashed sites are dropped. The seeded fault injector may eat or
    // clone a message before it is queued (the duplicate keeps the same
    // due instant, so FIFO order is unaffected).
    let router: JoinHandle<()> = {
        let done = Arc::clone(&done);
        let messages = Arc::clone(&messages);
        let injected_drops = Arc::clone(&injected_drops);
        let injected_dups = Arc::clone(&injected_dups);
        let crashed = Arc::clone(&crashed);
        let site_txs = site_txs.clone();
        let latency = opts.latency;
        let mut faults = LinkFaults::new(opts.loss.clone(), opts.outages.clone());
        let mut fault_rng = StdRng::seed_from_u64(opts.loss_seed);
        std::thread::spawn(move || {
            let mut heap: BinaryHeap<Delayed<P::Msg>> = BinaryHeap::new();
            let mut seq = 0u64;
            loop {
                let timeout = heap
                    .peek()
                    .map(|d| d.due.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(5));
                match router_rx.recv_timeout(timeout) {
                    Ok(env) => {
                        messages.fetch_add(1, Ordering::Relaxed);
                        let now_us = start.elapsed().as_micros() as u64;
                        let copies = match faults.decide(env.from, env.to, now_us, || {
                            fault_rng.gen_range(0.0f64..1.0)
                        }) {
                            FaultVerdict::Deliver => 1,
                            FaultVerdict::Drop => {
                                injected_drops.fetch_add(1, Ordering::Relaxed);
                                0
                            }
                            FaultVerdict::Duplicate => {
                                injected_dups.fetch_add(1, Ordering::Relaxed);
                                2
                            }
                        };
                        let due = Instant::now() + latency;
                        for _ in 0..copies {
                            seq += 1;
                            heap.push(Delayed {
                                due,
                                seq,
                                env: Envelope {
                                    from: env.from,
                                    to: env.to,
                                    msg: env.msg.clone(),
                                },
                            });
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                let now = Instant::now();
                while heap.peek().is_some_and(|d| d.due <= now) {
                    let d = heap.pop().expect("peeked");
                    if crashed.lock().contains(&d.env.to) {
                        continue; // dropped on the floor
                    }
                    // Send failures during shutdown are harmless.
                    let _ = site_txs[d.env.to.index()].send(Inbox::Net(d.env));
                }
                if done.load(Ordering::Relaxed) && heap.is_empty() {
                    break;
                }
            }
        })
    };

    // Fault-injection thread: a merged timeline of crashes, oracle
    // notices, and recoveries, executed in time order.
    enum Act {
        Die(SiteId),
        Notice(SiteId),
        Recover(SiteId),
    }
    let injector: Option<JoinHandle<()>> = if opts.crashes.is_empty() {
        None
    } else {
        let mut schedule: Vec<(Duration, Act)> = Vec::new();
        for &(victim, at) in &opts.crashes {
            schedule.push((at, Act::Die(victim)));
            if opts.oracle_notices {
                schedule.push((at + opts.detect_latency, Act::Notice(victim)));
            }
        }
        for &(site, at) in &opts.recoveries {
            schedule.push((at, Act::Recover(site)));
        }
        schedule.sort_by_key(|&(at, _)| at);
        let site_txs = site_txs.clone();
        let crashed = Arc::clone(&crashed);
        let done = Arc::clone(&done);
        Some(std::thread::spawn(move || {
            let t0 = Instant::now();
            for (at, act) in schedule {
                loop {
                    if done.load(Ordering::Relaxed) {
                        return;
                    }
                    let elapsed = t0.elapsed();
                    if elapsed >= at {
                        break;
                    }
                    std::thread::sleep((at - elapsed).min(Duration::from_millis(2)));
                }
                match act {
                    Act::Die(victim) => {
                        crashed.lock().insert(victim);
                        let _ = site_txs[victim.index()].send(Inbox::Die);
                    }
                    Act::Notice(victim) => {
                        // Snapshot the crashed set once so the survivor
                        // check is consistent across the whole broadcast
                        // (per-site locking could notify a site that
                        // crashed mid-iteration).
                        let snapshot = crashed.lock().clone();
                        for (i, tx) in site_txs.iter().enumerate() {
                            if i != victim.index() && !snapshot.contains(&SiteId(i as u32)) {
                                let _ = tx.send(Inbox::Failed(victim));
                            }
                        }
                    }
                    Act::Recover(site) => {
                        // Reopen routing first so the fresh incarnation's
                        // rejoin answers can reach it.
                        crashed.lock().remove(&site);
                        let _ = site_txs[site.index()].send(Inbox::Recover);
                    }
                }
            }
        }))
    };

    // Which sites are expected to finish all rounds: everyone except
    // victims that stay down (a victim with a scheduled recovery rejoins
    // and is expected to finish its rounds too).
    let victims: std::collections::BTreeSet<SiteId> =
        opts.crashes.iter().map(|&(s, _)| s).collect();
    let recovering: std::collections::BTreeSet<SiteId> =
        opts.recoveries.iter().map(|&(s, _)| s).collect();
    let permanent: std::collections::BTreeSet<SiteId> =
        victims.difference(&recovering).copied().collect();
    let expected_total: u64 = ((n - permanent.len()) * opts.rounds) as u64;
    let counted_flags: Vec<bool> = (0..n)
        .map(|i| !permanent.contains(&SiteId(i as u32)))
        .collect();
    let recovery_flags: Vec<bool> = (0..n)
        .map(|i| recovering.contains(&SiteId(i as u32)))
        .collect();

    // Site threads.
    type SiteResult = (usize, Option<TransportCounters>, Option<DetectorCounters>);
    let mut handles: Vec<JoinHandle<SiteResult>> = Vec::with_capacity(n);
    for (i, mut proto) in sites.into_iter().enumerate() {
        let rx = site_rxs.remove(0);
        let tx = router_tx.clone();
        let monitor = Arc::clone(&monitor);
        let done = Arc::clone(&done);
        let completed_total = Arc::clone(&completed_total);
        let counted = counted_flags[i];
        let has_recovery = recovery_flags[i];
        let opts = opts.clone();
        let me = SiteId(i as u32);
        handles.push(std::thread::spawn(move || {
            // Pristine pre-start state, swapped in if this site is
            // scheduled to crash and recover.
            let pristine = has_recovery.then(|| proto.clone());
            // Boot counter for incarnation fencing: each restart runs
            // under the next incarnation (see `Protocol::set_incarnation`).
            let mut boots: u64 = 0;
            let mut fx = Effects::new();
            let mut my_completed = 0usize;
            let mut dead = false;
            let mut exit_at: Option<Instant> = None;
            let mut next_request_at = Some(Instant::now());
            fn flush<M>(me: SiteId, fx: &mut Effects<M>, tx: &Sender<Envelope<M>>) -> bool {
                let (sends, entered) = fx.drain();
                for (to, msg) in sends {
                    let _ = tx.send(Envelope { from: me, to, msg });
                }
                !entered.is_empty()
            }
            // The driver clock handed to the transport layer: microseconds
            // since cluster start (monotone, shared by all sites).
            let now_us = || start.elapsed().as_micros() as u64;

            proto.set_now(now_us());
            proto.on_start(&mut fx);
            flush(me, &mut fx, &tx);

            let mut last_progress = Instant::now();
            loop {
                if done.load(Ordering::Relaxed) {
                    break;
                }
                if dead {
                    // Crashed with a recovery scheduled: ignore all
                    // traffic until the injector orders the restart.
                    match rx.recv_timeout(Duration::from_millis(1)) {
                        Ok(Inbox::Recover) => {
                            proto = pristine.clone().expect("recovery implies pristine");
                            dead = false;
                            boots += 1;
                            proto.set_incarnation(boots);
                            proto.set_now(now_us());
                            proto.on_start(&mut fx);
                            proto.on_recover(&mut fx);
                            flush(me, &mut fx, &tx);
                            if my_completed < opts.rounds {
                                next_request_at = Some(Instant::now() + opts.think);
                            }
                        }
                        Ok(_) => {}
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    last_progress = Instant::now();
                    continue;
                }
                assert!(
                    last_progress.elapsed() < Duration::from_secs(60),
                    "site {me} made no progress for 60s (deadlock?)"
                );

                // Fire due protocol timers (retransmissions, heartbeats,
                // rejoin-grace expiry). A timer CAN complete a CS entry —
                // e.g. the rejoin window closing grants this site's own
                // queued request — so `entered` must be honored here just
                // like on the message path.
                if proto.next_timer().is_some_and(|due| due <= now_us()) {
                    let t = now_us();
                    proto.set_now(t);
                    proto.on_timer(t, &mut fx);
                    if flush(me, &mut fx, &tx) {
                        monitor.enter(me);
                        exit_at = Some(Instant::now() + opts.hold);
                    }
                }

                // Leave the CS when the hold expires.
                if let Some(at) = exit_at {
                    if Instant::now() >= at {
                        exit_at = None;
                        monitor.exit(me);
                        proto.set_now(now_us());
                        proto.release_cs(&mut fx);
                        flush(me, &mut fx, &tx);
                        my_completed += 1;
                        if counted {
                            completed_total.fetch_add(1, Ordering::Relaxed);
                        }
                        last_progress = Instant::now();
                        if my_completed < opts.rounds {
                            next_request_at = Some(Instant::now() + opts.think);
                        }
                        continue;
                    }
                }

                // Issue the next request when idle and due.
                if exit_at.is_none() && !proto.in_cs() && !proto.wants_cs() {
                    // A request issued earlier may have been *withdrawn* by
                    // the protocol after the fact (the quorum turned
                    // inaccessible behind a suspected member): the site is
                    // idle again with rounds left but no retry armed.
                    // Re-arm, or the thread waits forever on replies that
                    // were abandoned.
                    if next_request_at.is_none() && my_completed < opts.rounds {
                        next_request_at = Some(Instant::now() + opts.think);
                    }
                    if let Some(at) = next_request_at {
                        if Instant::now() >= at {
                            next_request_at = None;
                            proto.set_now(now_us());
                            proto.request_cs(&mut fx);
                            if flush(me, &mut fx, &tx) {
                                monitor.enter(me);
                                exit_at = Some(Instant::now() + opts.hold);
                            } else if !proto.in_cs() && !proto.wants_cs() {
                                // Refused (quorum currently inaccessible
                                // behind a suspected site): retry after a
                                // think pause instead of losing the round.
                                next_request_at = Some(Instant::now() + opts.think);
                            }
                            last_progress = Instant::now();
                            continue;
                        }
                    }
                }

                // Process one inbox item (bounded wait so the timers above
                // keep firing).
                match rx.recv_timeout(Duration::from_micros(200)) {
                    Ok(Inbox::Net(env)) => {
                        proto.set_now(now_us());
                        proto.handle(env.from, env.msg, &mut fx);
                        if flush(me, &mut fx, &tx) {
                            monitor.enter(me);
                            exit_at = Some(Instant::now() + opts.hold);
                        }
                        last_progress = Instant::now();
                    }
                    Ok(Inbox::Failed(victim)) => {
                        proto.set_now(now_us());
                        proto.on_site_failure(victim, &mut fx);
                        if flush(me, &mut fx, &tx) {
                            monitor.enter(me);
                            exit_at = Some(Instant::now() + opts.hold);
                        }
                        last_progress = Instant::now();
                    }
                    Ok(Inbox::Die) => {
                        // Crashed: free the monitor if we died inside the
                        // CS (the survivors must be able to proceed via the
                        // §6 recovery), then stop — permanently, or until
                        // the injector's scheduled recovery.
                        if proto.in_cs() {
                            monitor.exit(me);
                        }
                        exit_at = None;
                        next_request_at = None;
                        if has_recovery {
                            dead = true;
                        } else {
                            break;
                        }
                    }
                    Ok(Inbox::Recover) => {
                        // Recovery order for a site that is not dead
                        // (schedule raced completion): nothing to do.
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            (
                my_completed,
                proto.transport_counters(),
                proto.detector_counters(),
            )
        }));
    }
    drop(router_tx);

    // Wait for global completion, then stop everyone.
    let watchdog = Instant::now();
    while completed_total.load(Ordering::Relaxed) < expected_total {
        assert!(
            watchdog.elapsed() < Duration::from_secs(60),
            "cluster did not complete {expected_total} CS executions in 60s (got {})",
            completed_total.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    done.store(true, Ordering::Relaxed);

    let mut per_site: Vec<usize> = Vec::with_capacity(n);
    let mut transport = TransportCounters::default();
    let mut detector = DetectorCounters::default();
    for h in handles {
        let (completed, tcounters, dcounters) = h.join().expect("site thread panicked");
        per_site.push(completed);
        if let Some(c) = tcounters {
            transport.merge(&c);
        }
        if let Some(c) = dcounters {
            detector.merge(&c);
        }
    }
    router.join().expect("router thread panicked");
    if let Some(h) = injector {
        h.join().expect("injector thread panicked");
    }

    RunOutcome {
        completed: per_site.iter().sum(),
        messages: messages.load(Ordering::Relaxed),
        injected_drops: injected_drops.load(Ordering::Relaxed),
        injected_dups: injected_dups.load(Ordering::Relaxed),
        transport,
        detector,
        elapsed: start.elapsed(),
        per_site,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmx_core::{Config, DelayOptimal};

    fn opts() -> NetOptions {
        NetOptions {
            latency: Duration::from_millis(1),
            hold: Duration::from_micros(200),
            rounds: 3,
            think: Duration::from_micros(500),
            ..NetOptions::default()
        }
    }

    #[test]
    fn live_delay_optimal_full_quorum() {
        let n = 3u32;
        let quorum: Vec<SiteId> = (0..n).map(SiteId).collect();
        let sites: Vec<DelayOptimal> = (0..n)
            .map(|i| DelayOptimal::new(SiteId(i), quorum.clone(), Config::default()))
            .collect();
        let out = run_cluster(sites, opts());
        assert_eq!(out.completed, 9);
        assert_eq!(out.per_site, vec![3, 3, 3]);
        assert!(out.messages > 0);
        assert!(messages_per_cs(&out) > 0.0);
    }

    #[test]
    fn live_crash_with_tree_reconstruction() {
        use qmx_quorum::TreeQuorumSource;
        let n = 7usize;
        let sites: Vec<DelayOptimal> = (0..n)
            .map(|i| {
                DelayOptimal::with_quorum_source(
                    SiteId(i as u32),
                    Config::default(),
                    Box::new(TreeQuorumSource::new(n).expect("2^d - 1")),
                )
            })
            .collect();
        let mut o = opts();
        o.rounds = 4;
        // Crash an interior tree node early; survivors must finish all
        // their rounds via §6 quorum reconstruction.
        o.crashes = vec![(SiteId(1), Duration::from_millis(5))];
        o.detect_latency = Duration::from_millis(5);
        let out = run_cluster(sites, o);
        for (i, &c) in out.per_site.iter().enumerate() {
            if i != 1 {
                assert_eq!(c, 4, "site {i} did not finish");
            }
        }
    }

    #[test]
    fn live_lossy_grid_with_transport() {
        use qmx_core::{Reliable, TransportConfig};
        use qmx_quorum::grid::grid_system;
        // The acceptance scenario: 9 sites on grid quorums, 10% i.i.d.
        // loss (plus some duplication), reliable transport enabled — all
        // rounds must complete with zero ME violations (monitor panics on
        // any) and the transport must actually have retransmitted.
        let n = 9usize;
        let sys = grid_system(n);
        let tcfg = TransportConfig {
            rto_initial: 8_000, // µs: 4× the 2 ms one-way latency
            rto_max: 64_000,
            max_retries: 40,
        };
        let sites: Vec<Reliable<DelayOptimal>> = (0..n)
            .map(|i| {
                Reliable::new(
                    DelayOptimal::new(
                        SiteId(i as u32),
                        sys.quorum_of(SiteId(i as u32)).to_vec(),
                        Config::default(),
                    ),
                    tcfg,
                )
            })
            .collect();
        let out = run_cluster(
            sites,
            NetOptions {
                loss: LossModel::Iid {
                    drop: 0.1,
                    dup: 0.05,
                },
                loss_seed: 0xBADCAB1E,
                rounds: 3,
                ..opts()
            },
        );
        assert_eq!(out.completed, n * 3);
        assert!(out.injected_drops > 0, "loss was injected");
        assert!(out.transport.retransmissions > 0, "transport recovered");
        assert!(out.transport.duplicates_dropped > 0, "dedup engaged");
    }

    #[test]
    fn live_crash_and_rejoin_without_oracle() {
        use qmx_core::{Detector, DetectorConfig, Reliable, TransportConfig};
        // The acceptance scenario: a real crash with *no* oracle notices.
        // Survivors suspect site 1 purely from heartbeat silence, it
        // restarts, rejoins through the detector handshake, and every site
        // — including the recovered one — completes all its rounds.
        let n = 3u32;
        let quorum: Vec<SiteId> = (0..n).map(SiteId).collect();
        let dcfg = DetectorConfig {
            hb_interval: 2_000, // µs: 2× the 1 ms one-way latency
            hb_timeout: 10_000,
            rejoin_wait: 5_000,
            fail_confirm: 30_000,
        };
        let tcfg = TransportConfig {
            rto_initial: 8_000,
            rto_max: 64_000,
            max_retries: 40,
        };
        let sites: Vec<Detector<Reliable<DelayOptimal>>> = (0..n)
            .map(|i| {
                Detector::new(
                    Reliable::new(
                        DelayOptimal::new(SiteId(i), quorum.clone(), Config::default()),
                        tcfg,
                    ),
                    quorum.clone(),
                    dcfg,
                )
            })
            .collect();
        let out = run_cluster(
            sites,
            NetOptions {
                oracle_notices: false,
                crashes: vec![(SiteId(1), Duration::from_millis(4))],
                recoveries: vec![(SiteId(1), Duration::from_millis(40))],
                ..opts()
            },
        );
        assert_eq!(out.completed, 9, "all sites finished: {:?}", out.per_site);
        assert_eq!(out.per_site, vec![3, 3, 3]);
        let d = &out.detector;
        assert!(d.heartbeats_sent > 0);
        assert!(d.suspicions >= 2, "both survivors suspected site 1: {d:?}");
        assert_eq!(d.rejoins_sent, 1, "one recovery announcement: {d:?}");
        assert!(d.rejoins_observed >= 2, "survivors saw the rejoin: {d:?}");
    }

    #[test]
    fn live_single_site() {
        let sites = vec![DelayOptimal::new(
            SiteId(0),
            vec![SiteId(0)],
            Config::default(),
        )];
        let out = run_cluster(sites, opts());
        assert_eq!(out.completed, 3);
        assert_eq!(out.messages, 0);
    }
}
