//! The per-site task: one poll-driven state machine serving peers and
//! clients over any [`Transport`].
//!
//! A [`Node`] owns one listener, one outbound link per peer site, the
//! protocol stack instance, and a per-resource client lock table. Its
//! entire behaviour is [`Node::poll`]: accept, read, decode, dispatch,
//! fire timers, expire deadlines, reconnect, flush — then report when it
//! next needs to run. In `qmxctl serve` a thread loops
//! `poll`/[`Transport::wait`]; in the deterministic tests the harness
//! calls `poll` by hand and advances the virtual clock between calls, so
//! both modes execute the same code with the same scheduling structure
//! (one logical task per site, woken by I/O readiness or timers).
//!
//! ## Client lock table
//!
//! Per resource the node keeps the granted holder and a FIFO queue of
//! waiting client requests. Only the queue head is represented in the
//! protocol stack — the `Protocol` interface models one outstanding
//! request per (site, resource), which is exactly Maekawa's and the
//! paper's model — so the node promotes the next waiter into a protocol
//! request each time the previous one resolves. A head waiter's deadline
//! rides the protocol's abortable-request machinery
//! ([`Protocol::set_deadline_r`]); queued waiters behind it are expired by
//! the node itself, which is cheaper than churning the quorum with
//! requests that would be withdrawn anyway.
//!
//! ## Failure handling
//!
//! Connection errors never propagate: a dead client session releases its
//! holdings and withdraws its waiters (so no grant is orphaned by a
//! vanished client), a dead peer link is scheduled for
//! reconnect-with-backoff, and frames destined to a down link are simply
//! dropped — the [`Reliable`](qmx_core::Reliable) layer inside the stack
//! retransmits anything that mattered once the link returns. Malformed
//! frames (bad length prefix, bad tag, trailing bytes) count in
//! [`NodeCounters::bad_frames`] and kill only the offending connection.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

use qmx_core::wire::Wire;
use qmx_core::{Effects, Protocol, ResourceId, SiteId};

use crate::frame::{write_frame, FrameBuf};
use crate::proto::{ClientMsg, Hello, RejectReason, ServerMsg};
use crate::transport::{Conn, Listener, Transport};

/// Static configuration of one site's node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This site.
    pub site: SiteId,
    /// Address to listen on.
    pub listen_addr: String,
    /// Peer sites and their addresses (self excluded).
    pub peers: Vec<(SiteId, String)>,
    /// Crash-recovery incarnation; `0` = first boot, `>0` = restart (the
    /// node announces a rejoin to its peers).
    pub incarnation: u64,
    /// First reconnect delay after a peer link drops, microseconds.
    pub reconnect_min_us: u64,
    /// Reconnect backoff cap, microseconds.
    pub reconnect_max_us: u64,
}

impl NodeConfig {
    /// Config with backoff defaults (10 ms doubling to 1 s).
    pub fn new(site: SiteId, listen_addr: String, peers: Vec<(SiteId, String)>) -> Self {
        NodeConfig {
            site,
            listen_addr,
            peers,
            incarnation: 0,
            reconnect_min_us: 10_000,
            reconnect_max_us: 1_000_000,
        }
    }
}

/// Observable event counts, asserted exactly by the deterministic tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeCounters {
    /// Frames decoded from peers and clients.
    pub frames_in: u64,
    /// Frames written toward peers and clients.
    pub frames_out: u64,
    /// Malformed frames (framing or wire decode failure).
    pub bad_frames: u64,
    /// Inbound connections accepted.
    pub sessions_opened: u64,
    /// Inbound connections torn down (error, EOF, or misbehaviour).
    pub sessions_closed: u64,
    /// Successful outbound peer connects (first connect included).
    pub peer_connects: u64,
    /// Failed outbound peer connect attempts.
    pub peer_conn_failures: u64,
    /// Locks granted to clients.
    pub grants: u64,
    /// Locks released by explicit client request.
    pub releases: u64,
    /// Pending acquires withdrawn by explicit client abort.
    pub client_aborts: u64,
    /// Pending acquires withdrawn by deadline expiry.
    pub deadline_aborts: u64,
    /// Locks force-released because the holding client vanished.
    pub disconnect_releases: u64,
    /// Session-level protocol misuses answered with `Rejected`.
    pub rejects: u64,
}

enum SessKind {
    AwaitHello,
    Peer(SiteId),
    Client { id: u64 },
}

struct Session<C> {
    conn: C,
    fb: FrameBuf,
    kind: SessKind,
    dead: bool,
}

struct PeerLink<C> {
    site: SiteId,
    addr: String,
    conn: Option<C>,
    retry_at: u64,
    backoff: u64,
}

struct Waiter {
    sess: usize,
    req: u64,
    deadline: Option<u64>,
    /// The client vanished (or aborted too late); if the grant still
    /// arrives, release it immediately instead of orphaning it.
    abandoned: bool,
}

#[derive(Default)]
struct RidState {
    holder: Option<(usize, u64)>,
    queue: VecDeque<Waiter>,
    /// A protocol request for the queue head is outstanding.
    requested: bool,
}

/// One site's runtime task. See the module docs for the model.
pub struct Node<T: Transport, P: Protocol> {
    cfg: NodeConfig,
    transport: T,
    listener: T::Listener,
    proto: P,
    fx: Effects<P::Msg>,
    sessions: Vec<Option<Session<T::Conn>>>,
    links: Vec<PeerLink<T::Conn>>,
    locks: BTreeMap<ResourceId, RidState>,
    counters: NodeCounters,
    scratch: Vec<u8>,
}

impl<T: Transport, P: Protocol> Node<T, P>
where
    P::Msg: Wire,
{
    /// Binds the listener and starts the protocol stack (announcing a
    /// rejoin to peers when `cfg.incarnation > 0`).
    pub fn new(mut transport: T, mut proto: P, cfg: NodeConfig) -> std::io::Result<Self> {
        let listener = transport.listen(&cfg.listen_addr)?;
        let now = transport.now_us();
        proto.set_now(now);
        proto.set_incarnation(cfg.incarnation);
        let links = cfg
            .peers
            .iter()
            .map(|(site, addr)| PeerLink {
                site: *site,
                addr: addr.clone(),
                conn: None,
                retry_at: now,
                backoff: cfg.reconnect_min_us,
            })
            .collect();
        let mut node = Node {
            cfg,
            transport,
            listener,
            proto,
            fx: Effects::new(),
            sessions: Vec::new(),
            links,
            locks: BTreeMap::new(),
            counters: NodeCounters::default(),
            scratch: Vec::new(),
        };
        node.proto.on_start(&mut node.fx);
        if node.cfg.incarnation > 0 {
            node.proto.on_recover(&mut node.fx);
        }
        node.dispatch_effects();
        Ok(node)
    }

    /// This site's id.
    pub fn site(&self) -> SiteId {
        self.cfg.site
    }

    /// Event counters.
    pub fn counters(&self) -> NodeCounters {
        self.counters
    }

    /// The protocol stack, for counter introspection in tests.
    pub fn protocol(&self) -> &P {
        &self.proto
    }

    /// `(resource, request token)` for every lock currently granted to a
    /// connected client.
    pub fn held(&self) -> Vec<(ResourceId, u64)> {
        let mut out = Vec::new();
        for (rid, st) in &self.locks {
            if let Some((sess, req)) = st.holder {
                if matches!(self.sessions.get(sess), Some(Some(_))) {
                    out.push((*rid, req));
                }
            }
        }
        out
    }

    /// Handshake ids of the currently connected client sessions, in
    /// accept order.
    pub fn client_ids(&self) -> Vec<u64> {
        self.sessions
            .iter()
            .flatten()
            .filter_map(|s| match s.kind {
                SessKind::Client { id } => Some(id),
                _ => None,
            })
            .collect()
    }

    /// True when no client holds or waits for any lock and the protocol
    /// stack neither holds nor wants any resource — the node could vanish
    /// without orphaning a grant.
    pub fn quiescent(&self) -> bool {
        self.locks.iter().all(|(rid, st)| {
            st.holder.is_none()
                && st.queue.is_empty()
                && !st.requested
                && !self.proto.in_cs_r(*rid)
                && !self.proto.wants_cs_r(*rid)
        })
    }

    /// Runs one scheduling round: accept, read, dispatch, timers,
    /// deadlines, reconnect, flush. Returns the next moment (transport
    /// clock, microseconds) this node needs to run, if any.
    pub fn poll(&mut self) -> Option<u64> {
        let now = self.transport.now_us();
        self.proto.set_now(now);
        self.accept();
        self.connect_links(now);
        self.read_sessions();
        self.fire_timers(now);
        self.expire_queued_waiters(now);
        self.flush_all(now);
        self.sweep_dead();
        self.next_wake(now)
    }

    /// Serve loop for real transports: poll, then wait for the next timer
    /// or I/O slice, until `stop` is raised.
    pub fn run(&mut self, stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            let wake = self.poll();
            if stop.load(Ordering::Relaxed) {
                break;
            }
            self.transport.wait(wake);
        }
    }

    /// Serve loop bounded by transport time: polls and waits until
    /// `dur_us` microseconds have elapsed on the transport clock. Used by
    /// `qmxctl serve --for-ms` and scripted smoke runs.
    pub fn run_for(&mut self, dur_us: u64) {
        let end = self.transport.now_us().saturating_add(dur_us);
        loop {
            let wake = self.poll();
            let now = self.transport.now_us();
            if now >= end {
                return;
            }
            let until = wake.map_or(end, |w| w.min(end));
            self.transport.wait(Some(until));
        }
    }

    // ------------------------------------------------------------------
    // Accept + reconnect
    // ------------------------------------------------------------------

    fn accept(&mut self) {
        while let Ok(Some(conn)) = self.listener.poll_accept() {
            self.counters.sessions_opened += 1;
            self.sessions.push(Some(Session {
                conn,
                fb: FrameBuf::new(),
                kind: SessKind::AwaitHello,
                dead: false,
            }));
        }
    }

    fn connect_links(&mut self, now: u64) {
        for li in 0..self.links.len() {
            if self.links[li].conn.is_some() || self.links[li].retry_at > now {
                continue;
            }
            let addr = self.links[li].addr.clone();
            match self.transport.connect(&addr) {
                Ok(mut conn) => {
                    let hello = Hello::Peer {
                        site: self.cfg.site,
                        incarnation: self.cfg.incarnation,
                    };
                    self.scratch.clear();
                    let payload = hello.to_bytes();
                    write_frame(&mut self.scratch, &payload);
                    if conn.send_bytes(&self.scratch).is_ok() {
                        self.counters.peer_connects += 1;
                        self.counters.frames_out += 1;
                        let link = &mut self.links[li];
                        link.conn = Some(conn);
                        link.backoff = self.cfg.reconnect_min_us;
                    } else {
                        self.link_down(li, now);
                    }
                }
                Err(_) => {
                    self.counters.peer_conn_failures += 1;
                    self.link_down(li, now);
                }
            }
        }
    }

    fn link_down(&mut self, li: usize, now: u64) {
        let link = &mut self.links[li];
        link.conn = None;
        link.retry_at = now + link.backoff;
        link.backoff = (link.backoff * 2).min(self.cfg.reconnect_max_us);
    }

    // ------------------------------------------------------------------
    // Reading and dispatch
    // ------------------------------------------------------------------

    fn read_sessions(&mut self) {
        for idx in 0..self.sessions.len() {
            let alive = matches!(&self.sessions[idx], Some(s) if !s.dead);
            if !alive {
                continue;
            }
            // Pull bytes.
            let recv_err = {
                let s = self.sessions[idx].as_mut().unwrap();
                s.conn.recv_bytes(s.fb.buf_mut()).is_err()
            };
            // Drain complete frames (including any buffered before an EOF).
            loop {
                let frame = {
                    let s = self.sessions[idx].as_mut().unwrap();
                    match s.fb.next_frame() {
                        Ok(f) => f,
                        Err(_) => {
                            self.counters.bad_frames += 1;
                            self.kill_session(idx);
                            break;
                        }
                    }
                };
                match frame {
                    Some(f) => {
                        if !self.handle_frame(idx, &f) {
                            self.counters.bad_frames += 1;
                            self.kill_session(idx);
                            break;
                        }
                    }
                    None => break,
                }
            }
            if recv_err {
                self.kill_session(idx);
            }
        }
    }

    /// Dispatches one decoded frame; `false` means the session misbehaved
    /// and must be dropped.
    fn handle_frame(&mut self, idx: usize, frame: &[u8]) -> bool {
        let kind = match &self.sessions[idx] {
            Some(s) if !s.dead => match s.kind {
                SessKind::AwaitHello => 0,
                SessKind::Peer(_) => 1,
                SessKind::Client { .. } => 2,
            },
            _ => return true,
        };
        self.counters.frames_in += 1;
        match kind {
            0 => match Hello::from_bytes(frame) {
                Ok(Hello::Peer { site, .. }) => {
                    if site == self.cfg.site || !self.links.iter().any(|l| l.site == site) {
                        return false;
                    }
                    self.sessions[idx].as_mut().unwrap().kind = SessKind::Peer(site);
                    true
                }
                Ok(Hello::Client { id }) => {
                    self.sessions[idx].as_mut().unwrap().kind = SessKind::Client { id };
                    self.send_client(
                        idx,
                        ServerMsg::Welcome {
                            site: self.cfg.site,
                        },
                    );
                    true
                }
                Err(_) => false,
            },
            1 => {
                let from = match self.sessions[idx].as_ref().unwrap().kind {
                    SessKind::Peer(s) => s,
                    _ => unreachable!(),
                };
                match P::Msg::from_bytes(frame) {
                    Ok(msg) => {
                        self.proto.handle(from, msg, &mut self.fx);
                        self.dispatch_effects();
                        true
                    }
                    Err(_) => false,
                }
            }
            _ => match ClientMsg::from_bytes(frame) {
                Ok(msg) => {
                    self.handle_client_msg(idx, msg);
                    true
                }
                Err(_) => false,
            },
        }
    }

    fn handle_client_msg(&mut self, idx: usize, msg: ClientMsg) {
        let (rid, req) = msg.key();
        match msg {
            ClientMsg::Acquire { wait_us, .. } => {
                let busy = {
                    let st = self.locks.entry(rid).or_default();
                    st.holder.is_some_and(|(s, _)| s == idx)
                        || st.queue.iter().any(|w| w.sess == idx && !w.abandoned)
                };
                if busy {
                    self.counters.rejects += 1;
                    self.send_client(
                        idx,
                        ServerMsg::Rejected {
                            rid,
                            req,
                            reason: RejectReason::Busy,
                        },
                    );
                    return;
                }
                // The wire carries a relative wait budget (client and site
                // clocks have different origins); pin it to this clock now.
                let now = self.transport.now_us();
                self.locks.entry(rid).or_default().queue.push_back(Waiter {
                    sess: idx,
                    req,
                    deadline: wait_us.map(|w| now.saturating_add(w)),
                    abandoned: false,
                });
                self.pump_rid(rid);
            }
            ClientMsg::Release { .. } => {
                let holds = self
                    .locks
                    .get(&rid)
                    .and_then(|st| st.holder)
                    .is_some_and(|(s, r)| s == idx && r == req);
                if !holds {
                    self.counters.rejects += 1;
                    self.send_client(
                        idx,
                        ServerMsg::Rejected {
                            rid,
                            req,
                            reason: RejectReason::NotHeld,
                        },
                    );
                    return;
                }
                self.locks.get_mut(&rid).unwrap().holder = None;
                self.proto.release_cs_r(rid, &mut self.fx);
                self.counters.releases += 1;
                self.dispatch_effects();
                self.send_client(idx, ServerMsg::Released { rid, req });
                self.pump_rid(rid);
            }
            ClientMsg::Abort { .. } => {
                enum Outcome {
                    HeadLive,
                    Queued(usize),
                    Holder,
                    Missing,
                }
                let outcome = match self.locks.get(&rid) {
                    Some(st) if st.holder.is_some_and(|(s, r)| s == idx && r == req) => {
                        Outcome::Holder
                    }
                    Some(st) => {
                        match st
                            .queue
                            .iter()
                            .position(|w| w.sess == idx && w.req == req && !w.abandoned)
                        {
                            Some(0) if st.requested => Outcome::HeadLive,
                            Some(p) => Outcome::Queued(p),
                            None => Outcome::Missing,
                        }
                    }
                    None => Outcome::Missing,
                };
                match outcome {
                    Outcome::HeadLive => {
                        if self.proto.abort_cs_r(rid, &mut self.fx) {
                            let st = self.locks.get_mut(&rid).unwrap();
                            st.queue.pop_front();
                            st.requested = false;
                            self.counters.client_aborts += 1;
                            self.dispatch_effects();
                            self.send_client(idx, ServerMsg::Aborted { rid, req });
                            self.pump_rid(rid);
                        } else {
                            // The grant beat the abort: either the entered
                            // effect is about to surface or the protocol is
                            // mid-handoff. Mark the waiter so the grant is
                            // released on arrival instead of orphaned, and
                            // tell the client its abort came too late.
                            self.locks.get_mut(&rid).unwrap().queue[0].abandoned = true;
                            self.dispatch_effects();
                            self.counters.rejects += 1;
                            self.send_client(
                                idx,
                                ServerMsg::Rejected {
                                    rid,
                                    req,
                                    reason: RejectReason::AlreadyGranted,
                                },
                            );
                        }
                    }
                    Outcome::Queued(p) => {
                        self.locks.get_mut(&rid).unwrap().queue.remove(p);
                        self.counters.client_aborts += 1;
                        self.send_client(idx, ServerMsg::Aborted { rid, req });
                    }
                    Outcome::Holder => {
                        self.counters.rejects += 1;
                        self.send_client(
                            idx,
                            ServerMsg::Rejected {
                                rid,
                                req,
                                reason: RejectReason::AlreadyGranted,
                            },
                        );
                    }
                    Outcome::Missing => {
                        self.counters.rejects += 1;
                        self.send_client(
                            idx,
                            ServerMsg::Rejected {
                                rid,
                                req,
                                reason: RejectReason::NotHeld,
                            },
                        );
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Lock table engine
    // ------------------------------------------------------------------

    /// Promotes the next live waiter on `rid` into a protocol request, if
    /// none is outstanding.
    fn pump_rid(&mut self, rid: ResourceId) {
        let issue = {
            let st = self.locks.entry(rid).or_default();
            if st.requested || st.holder.is_some() {
                None
            } else {
                // Abandoned waiters ahead of a request are just dropped —
                // their client is gone and nothing was asked of the quorum.
                while st.queue.front().is_some_and(|w| w.abandoned) {
                    st.queue.pop_front();
                }
                st.queue.front().map(|w| w.deadline)
            }
        };
        if let Some(deadline) = issue {
            let st = self.locks.get_mut(&rid).unwrap();
            st.requested = true;
            self.proto.set_deadline_r(rid, deadline);
            self.proto.request_cs_r(rid, &mut self.fx);
            self.dispatch_effects();
        }
    }

    /// Runs protocol effects to completion: route sends to peer links,
    /// turn entered-CS events into client grants, and surface
    /// deadline-aborted requests.
    fn dispatch_effects(&mut self) {
        loop {
            let (sends, entered) = self.fx.drain();
            let aborted = self.proto.drain_aborted_resources();
            if sends.is_empty() && entered.is_empty() && aborted.is_empty() {
                break;
            }
            for (to, msg) in sends {
                self.send_peer(to, &msg);
            }
            for rid in entered {
                self.on_entered(rid);
            }
            for rid in aborted {
                self.on_deadline_abort(rid);
            }
        }
    }

    fn on_entered(&mut self, rid: ResourceId) {
        enum Grant {
            To(usize, u64),
            Abandon,
        }
        let grant = {
            let st = self.locks.entry(rid).or_default();
            st.requested = false;
            match st.queue.pop_front() {
                Some(w) if !w.abandoned => {
                    st.holder = Some((w.sess, w.req));
                    Grant::To(w.sess, w.req)
                }
                _ => Grant::Abandon,
            }
        };
        match grant {
            Grant::To(sess, req) => {
                self.counters.grants += 1;
                self.send_client(sess, ServerMsg::Granted { rid, req });
            }
            Grant::Abandon => {
                // The waiter this grant was for is gone — hand it straight
                // back rather than sitting on an orphaned lock.
                self.counters.disconnect_releases += 1;
                self.proto.release_cs_r(rid, &mut self.fx);
                self.pump_rid(rid);
            }
        }
        self.pump_rid(rid);
    }

    fn on_deadline_abort(&mut self, rid: ResourceId) {
        let head = {
            let st = self.locks.entry(rid).or_default();
            st.requested = false;
            st.queue.pop_front()
        };
        if let Some(w) = head {
            if !w.abandoned {
                self.counters.deadline_aborts += 1;
                self.send_client(w.sess, ServerMsg::Aborted { rid, req: w.req });
            }
        }
        self.pump_rid(rid);
    }

    /// Expires queued (non-head) waiters whose deadline passed; the head's
    /// deadline is enforced inside the protocol stack.
    fn expire_queued_waiters(&mut self, now: u64) {
        let mut expired: Vec<(usize, ResourceId, u64)> = Vec::new();
        for (rid, st) in self.locks.iter_mut() {
            let skip_head = if st.requested { 1 } else { 0 };
            let mut keep = 0usize;
            let mut i = 0usize;
            st.queue.retain(|w| {
                let is_head = i < skip_head;
                i += 1;
                let dead = !is_head && !w.abandoned && w.deadline.is_some_and(|d| d <= now);
                if dead {
                    expired.push((w.sess, *rid, w.req));
                    false
                } else {
                    keep += 1;
                    true
                }
            });
            let _ = keep;
        }
        for (sess, rid, req) in expired {
            self.counters.deadline_aborts += 1;
            self.send_client(sess, ServerMsg::Aborted { rid, req });
        }
    }

    fn fire_timers(&mut self, now: u64) {
        // Bounded: a protocol that reschedules a due timer forever would
        // otherwise wedge the task.
        for _ in 0..1024 {
            match self.proto.next_timer() {
                Some(due) if due <= now => {
                    self.proto.on_timer(now, &mut self.fx);
                    self.dispatch_effects();
                }
                _ => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // Writing
    // ------------------------------------------------------------------

    fn send_client(&mut self, idx: usize, msg: ServerMsg) {
        let Some(Some(s)) = self.sessions.get_mut(idx) else {
            return;
        };
        if s.dead {
            return;
        }
        self.scratch.clear();
        let payload = msg.to_bytes();
        write_frame(&mut self.scratch, &payload);
        if s.conn.send_bytes(&self.scratch).is_err() {
            s.dead = true;
        } else {
            self.counters.frames_out += 1;
        }
    }

    fn send_peer(&mut self, to: SiteId, msg: &P::Msg) {
        if to == self.cfg.site {
            return;
        }
        let Some(li) = self.links.iter().position(|l| l.site == to) else {
            return;
        };
        if self.links[li].conn.is_none() {
            return; // link down; Reliable will retransmit
        }
        self.scratch.clear();
        let payload = msg.to_bytes();
        write_frame(&mut self.scratch, &payload);
        let ok = self.links[li]
            .conn
            .as_mut()
            .unwrap()
            .send_bytes(&self.scratch)
            .is_ok();
        if ok {
            self.counters.frames_out += 1;
        } else {
            let now = self.transport.now_us();
            self.link_down(li, now);
        }
    }

    fn flush_all(&mut self, now: u64) {
        for li in 0..self.links.len() {
            let broke = match self.links[li].conn.as_mut() {
                Some(c) => c.flush().is_err(),
                None => false,
            };
            if broke {
                self.link_down(li, now);
            }
        }
        for idx in 0..self.sessions.len() {
            if let Some(s) = self.sessions[idx].as_mut() {
                if !s.dead && s.conn.flush().is_err() {
                    s.dead = true;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Session teardown
    // ------------------------------------------------------------------

    fn kill_session(&mut self, idx: usize) {
        if let Some(Some(s)) = self.sessions.get_mut(idx) {
            s.dead = true;
        }
    }

    fn sweep_dead(&mut self) {
        for idx in 0..self.sessions.len() {
            let dead = self.sessions[idx].as_ref().is_some_and(|s| s.dead);
            if dead {
                self.teardown_session(idx);
            }
        }
    }

    /// Releases everything a vanished session owned, then frees its slot.
    fn teardown_session(&mut self, idx: usize) {
        let was_client = matches!(
            self.sessions[idx].as_ref().map(|s| &s.kind),
            Some(SessKind::Client { .. })
        );
        self.sessions[idx] = None;
        self.counters.sessions_closed += 1;
        if !was_client {
            return;
        }
        let rids: Vec<ResourceId> = self.locks.keys().copied().collect();
        for rid in rids {
            let (held, head_live) = {
                let st = self.locks.get_mut(&rid).unwrap();
                let held = st.holder.is_some_and(|(s, _)| s == idx);
                if held {
                    st.holder = None;
                }
                // Queued waiters from this session: drop outright if not
                // represented in the protocol, mark abandoned if head.
                let mut head_live = false;
                if st.requested
                    && st
                        .queue
                        .front()
                        .is_some_and(|w| w.sess == idx && !w.abandoned)
                {
                    head_live = true;
                }
                let requested = st.requested;
                let mut i = 0usize;
                st.queue.retain(|w| {
                    let is_head = i == 0 && requested;
                    i += 1;
                    w.sess != idx || is_head
                });
                (held, head_live)
            };
            if held {
                self.counters.disconnect_releases += 1;
                self.proto.release_cs_r(rid, &mut self.fx);
                self.dispatch_effects();
            }
            if head_live {
                if self.proto.abort_cs_r(rid, &mut self.fx) {
                    let st = self.locks.get_mut(&rid).unwrap();
                    st.queue.pop_front();
                    st.requested = false;
                    self.dispatch_effects();
                } else {
                    self.locks.get_mut(&rid).unwrap().queue[0].abandoned = true;
                    self.dispatch_effects();
                }
            }
            self.pump_rid(rid);
        }
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    fn next_wake(&self, now: u64) -> Option<u64> {
        let mut wake: Option<u64> = self.proto.next_timer();
        let mut see = |t: u64| {
            wake = Some(match wake {
                Some(w) if w <= t => w,
                _ => t,
            });
        };
        for l in &self.links {
            if l.conn.is_none() {
                see(l.retry_at);
            }
        }
        for st in self.locks.values() {
            let skip_head = if st.requested { 1 } else { 0 };
            for w in st.queue.iter().skip(skip_head) {
                if let Some(d) = w.deadline {
                    if !w.abandoned {
                        see(d);
                    }
                }
            }
        }
        wake.map(|w| w.max(now))
    }
}
