//! In-process loopback transport with a virtual clock.
//!
//! This is the deterministic half of the transport seam: byte pipes that
//! live in one shared [`LoopNet`], carrying the *same* framed bytes the
//! TCP transport carries, but delivered only when the virtual clock says
//! so. Each written chunk is stamped `avail_at = now + latency` (FIFO per
//! direction — a chunk never overtakes an earlier one), and a reader sees
//! exactly the bytes whose stamp has passed. Nothing here touches real
//! ports, threads, or wall-clock time, so a `cargo test` run over this
//! transport is bit-for-bit reproducible: the test harness owns the clock
//! via [`LoopNet::advance_to`] and steps it event by event.
//!
//! Fault injection mirrors what the e2e suite needs: dropping a
//! [`LoopConn`] closes that side (the peer drains in-flight bytes, then
//! reads `UnexpectedEof`, exactly like a TCP FIN), dropping a
//! [`LoopListener`] unbinds the address (subsequent connects get
//! `ConnectionRefused`, which is what drives the reconnect-with-backoff
//! path), and killing a whole site is just dropping its node, which drops
//! its listener and every conn it owns.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::transport::{Conn, Listener, Transport};

/// One timed burst of bytes in flight on a pipe direction.
#[derive(Debug)]
struct Chunk {
    avail_at: u64,
    bytes: Vec<u8>,
}

/// A bidirectional byte pipe. `dirs[s]` holds bytes written by side `s`
/// (read by side `1 - s`).
#[derive(Debug)]
struct Pipe {
    dirs: [VecDeque<Chunk>; 2],
    open: [bool; 2],
    labels: [String; 2],
}

#[derive(Debug)]
struct ListenerSlot {
    backlog: VecDeque<(usize, u64)>,
    gen: u64,
}

#[derive(Debug)]
struct NetInner {
    now: u64,
    latency: u64,
    pipes: Vec<Pipe>,
    listeners: BTreeMap<String, ListenerSlot>,
    next_gen: u64,
}

impl NetInner {
    /// Earliest stamp among undelivered chunks and pending accepts, if any.
    fn next_event(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut see = |t: u64| {
            min = Some(match min {
                Some(m) if m <= t => m,
                _ => t,
            })
        };
        for p in &self.pipes {
            for (s, d) in p.dirs.iter().enumerate() {
                // Bytes nobody can ever read (the receiving side hung up,
                // e.g. a killed node) are not events.
                if !p.open[1 - s] {
                    continue;
                }
                if let Some(c) = d.front() {
                    see(c.avail_at);
                }
            }
        }
        for slot in self.listeners.values() {
            if let Some(&(_, t)) = slot.backlog.front() {
                see(t);
            }
        }
        min
    }
}

/// The shared virtual network: clock, pipes, and bound listeners.
///
/// Cheap to clone (all clones share state). Tests keep one around as the
/// clock authority; every [`LoopTransport`] handed to a node is a clone.
#[derive(Clone)]
pub struct LoopNet {
    inner: Arc<Mutex<NetInner>>,
}

impl Default for LoopNet {
    fn default() -> Self {
        Self::new(500)
    }
}

impl LoopNet {
    /// Creates a network whose every byte chunk takes `latency_us` virtual
    /// microseconds to arrive.
    pub fn new(latency_us: u64) -> Self {
        LoopNet {
            inner: Arc::new(Mutex::new(NetInner {
                now: 0,
                latency: latency_us.max(1),
                pipes: Vec::new(),
                listeners: BTreeMap::new(),
                next_gen: 0,
            })),
        }
    }

    /// Current virtual time in microseconds.
    pub fn now(&self) -> u64 {
        self.inner.lock().now
    }

    /// Advances the virtual clock. Going backwards is a harness bug.
    pub fn advance_to(&self, t: u64) {
        let mut g = self.inner.lock();
        assert!(
            t >= g.now,
            "virtual clock must be monotone ({} -> {t})",
            g.now
        );
        g.now = t;
    }

    /// Stamp of the next in-flight delivery or pending accept, if any.
    pub fn next_event(&self) -> Option<u64> {
        self.inner.lock().next_event()
    }

    /// Changes the one-way latency applied to subsequently written chunks.
    pub fn set_latency(&self, latency_us: u64) {
        self.inner.lock().latency = latency_us.max(1);
    }

    /// A transport handle onto this network, one per node or client.
    pub fn transport(&self) -> LoopTransport {
        LoopTransport { net: self.clone() }
    }
}

/// One side of a loopback pipe.
pub struct LoopConn {
    net: LoopNet,
    pipe: usize,
    side: usize,
    label: String,
}

impl std::fmt::Debug for LoopConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopConn")
            .field("pipe", &self.pipe)
            .field("side", &self.side)
            .field("label", &self.label)
            .finish()
    }
}

impl Conn for LoopConn {
    fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        let mut g = self.net.inner.lock();
        let now = g.now;
        let latency = g.latency;
        let p = &mut g.pipes[self.pipe];
        if !p.open[self.side] || !p.open[1 - self.side] {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        // FIFO: never stamp a chunk earlier than the one before it.
        let floor = p.dirs[self.side].back().map(|c| c.avail_at).unwrap_or(0);
        let avail_at = (now + latency).max(floor);
        p.dirs[self.side].push_back(Chunk {
            avail_at,
            bytes: bytes.to_vec(),
        });
        Ok(())
    }

    fn recv_bytes(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        let mut g = self.net.inner.lock();
        let now = g.now;
        let p = &mut g.pipes[self.pipe];
        let dir = &mut p.dirs[1 - self.side];
        let mut n = 0;
        while dir.front().is_some_and(|c| c.avail_at <= now) {
            let c = dir.pop_front().unwrap();
            n += c.bytes.len();
            buf.extend_from_slice(&c.bytes);
        }
        if n == 0 && !p.open[1 - self.side] {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"));
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn peer_label(&self) -> String {
        self.label.clone()
    }
}

impl Drop for LoopConn {
    fn drop(&mut self) {
        let mut g = self.net.inner.lock();
        g.pipes[self.pipe].open[self.side] = false;
    }
}

/// A bound loopback address. Dropping it unbinds the address.
pub struct LoopListener {
    net: LoopNet,
    addr: String,
    gen: u64,
}

impl Listener for LoopListener {
    type Conn = LoopConn;

    fn poll_accept(&mut self) -> io::Result<Option<LoopConn>> {
        let mut g = self.net.inner.lock();
        let now = g.now;
        let slot = match g.listeners.get_mut(&self.addr) {
            Some(s) if s.gen == self.gen => s,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "listener unbound",
                ))
            }
        };
        if slot.backlog.front().is_some_and(|&(_, t)| t <= now) {
            let (pipe, _) = slot.backlog.pop_front().unwrap();
            let label = g.pipes[pipe].labels[1].clone();
            return Ok(Some(LoopConn {
                net: self.net.clone(),
                pipe,
                side: 1,
                label,
            }));
        }
        Ok(None)
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

impl Drop for LoopListener {
    fn drop(&mut self) {
        let mut g = self.net.inner.lock();
        if g.listeners
            .get(&self.addr)
            .is_some_and(|s| s.gen == self.gen)
        {
            g.listeners.remove(&self.addr);
        }
    }
}

/// [`Transport`] handle onto a [`LoopNet`].
#[derive(Clone)]
pub struct LoopTransport {
    net: LoopNet,
}

impl Transport for LoopTransport {
    type Conn = LoopConn;
    type Listener = LoopListener;

    fn listen(&mut self, addr: &str) -> io::Result<LoopListener> {
        let mut g = self.net.inner.lock();
        if g.listeners.contains_key(addr) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("loopback address {addr} already bound"),
            ));
        }
        g.next_gen += 1;
        let gen = g.next_gen;
        g.listeners.insert(
            addr.to_string(),
            ListenerSlot {
                backlog: VecDeque::new(),
                gen,
            },
        );
        Ok(LoopListener {
            net: self.net.clone(),
            addr: addr.to_string(),
            gen,
        })
    }

    fn connect(&mut self, addr: &str) -> io::Result<LoopConn> {
        let mut g = self.net.inner.lock();
        if !g.listeners.contains_key(addr) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("no loopback listener on {addr}"),
            ));
        }
        let now = g.now;
        let latency = g.latency;
        let pipe = g.pipes.len();
        g.pipes.push(Pipe {
            dirs: [VecDeque::new(), VecDeque::new()],
            open: [true, true],
            labels: [addr.to_string(), format!("dial:{addr}")],
        });
        g.listeners
            .get_mut(addr)
            .unwrap()
            .backlog
            .push_back((pipe, now + latency));
        Ok(LoopConn {
            net: self.net.clone(),
            pipe,
            side: 0,
            label: addr.to_string(),
        })
    }

    fn now_us(&mut self) -> u64 {
        self.net.now()
    }

    fn wait(&mut self, until: Option<u64>) {
        // Standalone use only: the deterministic harness drives the clock
        // itself and never calls this. Jump to the next interesting moment.
        let mut g = self.net.inner.lock();
        let mut target = until.unwrap_or(g.now.saturating_add(1_000));
        if let Some(ev) = g.next_event() {
            target = target.min(ev);
        }
        if target > g.now {
            g.now = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_arrive_only_after_latency() {
        let net = LoopNet::new(100);
        let mut t = net.transport();
        let mut lst = t.listen("a").unwrap();
        let mut dial = t.connect("a").unwrap();
        assert!(
            lst.poll_accept().unwrap().is_none(),
            "accept before latency"
        );
        net.advance_to(100);
        let mut acc = lst.poll_accept().unwrap().expect("accept after latency");
        dial.send_bytes(b"ping").unwrap();
        let mut buf = Vec::new();
        assert_eq!(acc.recv_bytes(&mut buf).unwrap(), 0);
        net.advance_to(200);
        assert_eq!(acc.recv_bytes(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn close_drains_then_eof() {
        let net = LoopNet::new(10);
        let mut t = net.transport();
        let mut lst = t.listen("a").unwrap();
        let mut dial = t.connect("a").unwrap();
        net.advance_to(10);
        let mut acc = lst.poll_accept().unwrap().unwrap();
        dial.send_bytes(b"last words").unwrap();
        drop(dial);
        net.advance_to(20);
        let mut buf = Vec::new();
        assert_eq!(acc.recv_bytes(&mut buf).unwrap(), 10);
        let err = acc.recv_bytes(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // And writes toward the closed side fail too.
        assert!(acc.send_bytes(b"x").is_err());
    }

    #[test]
    fn connect_refused_without_listener_and_after_unbind() {
        let net = LoopNet::new(10);
        let mut t = net.transport();
        assert_eq!(
            t.connect("ghost").unwrap_err().kind(),
            io::ErrorKind::ConnectionRefused
        );
        let lst = t.listen("a").unwrap();
        drop(lst);
        assert_eq!(
            t.connect("a").unwrap_err().kind(),
            io::ErrorKind::ConnectionRefused
        );
        // Rebinding works and gets a fresh generation.
        let _lst2 = t.listen("a").unwrap();
        assert!(t.connect("a").is_ok());
    }

    #[test]
    fn fifo_per_direction() {
        let net = LoopNet::new(50);
        let mut t = net.transport();
        let mut lst = t.listen("a").unwrap();
        let mut dial = t.connect("a").unwrap();
        net.advance_to(50);
        let mut acc = lst.poll_accept().unwrap().unwrap();
        dial.send_bytes(b"aa").unwrap();
        // Lower the latency mid-stream: the second chunk must not overtake.
        net.set_latency(1);
        dial.send_bytes(b"bb").unwrap();
        net.advance_to(51);
        let mut buf = Vec::new();
        assert_eq!(
            acc.recv_bytes(&mut buf).unwrap(),
            0,
            "held behind first chunk"
        );
        net.advance_to(100);
        acc.recv_bytes(&mut buf).unwrap();
        assert_eq!(&buf, b"aabb");
    }
}
