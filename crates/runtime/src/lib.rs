//! # qmx-runtime
//!
//! Live multi-threaded runtime for `qmx` protocols: each site runs on its
//! own OS thread, messages travel through crossbeam channels with injected
//! latency, and a shared monitor asserts mutual exclusion in real time.
//! See [`net::run_cluster`].

#![forbid(unsafe_code)]

pub mod net;

pub use net::{messages_per_cs, run_cluster, NetOptions, RunOutcome};
