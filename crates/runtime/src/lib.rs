//! # qmx-runtime
//!
//! Networked runtime for `qmx` protocols, in two generations:
//!
//! * **Socket runtime** (this PR's main body): a poll-driven task per site
//!   ([`Node`]) speaking length-prefixed [`Wire`](qmx_core::Wire) frames
//!   over a swappable byte [`transport`] — real [TCP / Unix-domain
//!   sockets](tcp) for `qmxctl serve`, or the deterministic in-process
//!   [loopback] with a virtual clock for `cargo test`. Sites
//!   serve real clients (see `qmx-client`) and each other over the same
//!   framing; the protocol stack ([`ServeStack`]) is byte-identical in
//!   both modes.
//! * **Thread-per-site channel runtime** ([`net`]): the earlier
//!   crossbeam-channel harness with a shared mutual-exclusion monitor,
//!   kept as a stress-oriented reference driver.
//!
//! Layering of the socket runtime, bottom to top:
//!
//! 1. [`transport`] — `Conn`/`Listener`/`Transport` traits (the seam).
//! 2. [`frame`] — `[u32 LE len][payload]` framing with a hard cap.
//! 3. `qmx_core::wire` — binary codec for the stack's messages.
//! 4. [`proto`] — connection handshake + the client lock API.
//! 5. [`node`] — the per-site task: sessions, peer links with
//!    reconnect-backoff, the client lock table, timer dispatch.
//! 6. [`stack`] — the canonical `Detector<Reliable<LockSpace<…>>>`
//!    composition served by all of the above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod loopback;
pub mod net;
pub mod node;
pub mod proto;
pub mod stack;
pub mod tcp;
pub mod transport;

pub use frame::{write_frame, FrameBuf, FrameError, MAX_FRAME};
pub use loopback::{LoopConn, LoopListener, LoopNet, LoopTransport};
pub use net::{messages_per_cs, run_cluster, NetOptions, RunOutcome};
pub use node::{Node, NodeConfig, NodeCounters};
pub use proto::{ClientMsg, Hello, RejectReason, ServerMsg};
pub use stack::{build_stack, RingMajoritySource, ServeMsg, ServeStack, StackConfig};
pub use tcp::{StreamConn, TcpTransport, UdsTransport};
pub use transport::{Conn, Listener, Transport};
