//! Real-socket transports: TCP and Unix-domain sockets.
//!
//! Both are thin nonblocking wrappers over `std::net` / `std::os::unix::net`
//! satisfying the [`Conn`]/[`Listener`]/[`Transport`] contract, so the node
//! and client state machines built against the loopback run unchanged over
//! real sockets. The two stream types share one generic [`StreamConn`]
//! implementation: an unbounded userspace send buffer drained
//! opportunistically (`WouldBlock` is never an error, just "kernel is
//! full, try again on the next flush"), and a drain-everything-available
//! read loop.
//!
//! Real sockets cannot wake a poll loop the way the virtual clock does, so
//! [`Transport::wait`] here sleeps in short bounded slices — cheap enough
//! for a lock service tick loop, and irrelevant to tests, which use the
//! loopback.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::{Duration, Instant};

use crate::transport::{Conn, Listener, Transport};

/// Longest single sleep [`Transport::wait`] will take, so accepts and
/// reconnects are noticed promptly even with no timer due.
const WAIT_SLICE_US: u64 = 1_000;

/// A nonblocking byte-stream connection over any `Read + Write` socket.
pub struct StreamConn<S> {
    stream: S,
    out: Vec<u8>,
    out_pos: usize,
    label: String,
}

impl<S> StreamConn<S> {
    fn new(stream: S, label: String) -> Self {
        StreamConn {
            stream,
            out: Vec::new(),
            out_pos: 0,
            label,
        }
    }
}

impl<S: Read + Write> Conn for StreamConn<S> {
    fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.out.extend_from_slice(bytes);
        self.flush()
    }

    fn flush(&mut self) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > 65_536 {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(())
    }

    fn recv_bytes(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        let mut total = 0;
        let mut scratch = [0u8; 16_384];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    if total > 0 {
                        return Ok(total);
                    }
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"));
                }
                Ok(n) => {
                    buf.extend_from_slice(&scratch[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(total),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn peer_label(&self) -> String {
        self.label.clone()
    }
}

/// TCP [`Transport`]. Addresses are `host:port` strings.
pub struct TcpTransport {
    t0: Instant,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpTransport {
    /// Creates a transport whose clock starts at zero now.
    pub fn new() -> Self {
        TcpTransport { t0: Instant::now() }
    }
}

/// A bound, nonblocking TCP accept socket.
pub struct TcpAccept {
    listener: TcpListener,
    addr: String,
}

impl Listener for TcpAccept {
    type Conn = StreamConn<TcpStream>;

    fn poll_accept(&mut self) -> io::Result<Option<Self::Conn>> {
        match self.listener.accept() {
            Ok((stream, peer)) => {
                stream.set_nonblocking(true)?;
                let _ = stream.set_nodelay(true);
                Ok(Some(StreamConn::new(stream, peer.to_string())))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

impl Transport for TcpTransport {
    type Conn = StreamConn<TcpStream>;
    type Listener = TcpAccept;

    fn listen(&mut self, addr: &str) -> io::Result<TcpAccept> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        Ok(TcpAccept {
            listener,
            addr: bound,
        })
    }

    fn connect(&mut self, addr: &str) -> io::Result<StreamConn<TcpStream>> {
        // Blocking connect: localhost handshakes complete in microseconds,
        // and a refused port returns promptly to drive the backoff path.
        let stream = TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(StreamConn::new(stream, addr.to_string()))
    }

    fn now_us(&mut self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    fn wait(&mut self, until: Option<u64>) {
        let now = self.now_us();
        let sleep_us = match until {
            Some(u) if u <= now => return,
            Some(u) => (u - now).min(WAIT_SLICE_US),
            None => WAIT_SLICE_US,
        };
        std::thread::sleep(Duration::from_micros(sleep_us));
    }
}

/// Unix-domain-socket [`Transport`]. Addresses are filesystem paths; a
/// stale socket file from a previous run is removed before binding.
pub struct UdsTransport {
    t0: Instant,
}

impl Default for UdsTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl UdsTransport {
    /// Creates a transport whose clock starts at zero now.
    pub fn new() -> Self {
        UdsTransport { t0: Instant::now() }
    }
}

/// A bound, nonblocking Unix-domain accept socket. Unlinks its path on drop.
pub struct UdsAccept {
    listener: UnixListener,
    path: String,
}

impl Listener for UdsAccept {
    type Conn = StreamConn<UnixStream>;

    fn poll_accept(&mut self) -> io::Result<Option<Self::Conn>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(true)?;
                Ok(Some(StreamConn::new(stream, self.path.clone())))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn local_addr(&self) -> String {
        self.path.clone()
    }
}

impl Drop for UdsAccept {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Transport for UdsTransport {
    type Conn = StreamConn<UnixStream>;
    type Listener = UdsAccept;

    fn listen(&mut self, addr: &str) -> io::Result<UdsAccept> {
        let _ = std::fs::remove_file(addr);
        let listener = UnixListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(UdsAccept {
            listener,
            path: addr.to_string(),
        })
    }

    fn connect(&mut self, addr: &str) -> io::Result<StreamConn<UnixStream>> {
        let stream = UnixStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        Ok(StreamConn::new(stream, addr.to_string()))
    }

    fn now_us(&mut self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    fn wait(&mut self, until: Option<u64>) {
        let now = self.now_us();
        let sleep_us = match until {
            Some(u) if u <= now => return,
            Some(u) => (u - now).min(WAIT_SLICE_US),
            None => WAIT_SLICE_US,
        };
        std::thread::sleep(Duration::from_micros(sleep_us));
    }
}
