//! The swappable byte-transport seam of the networked runtime.
//!
//! Everything above this interface — connection handshake, length-prefixed
//! framing, wire codec, reconnect-with-backoff, heartbeat-driven suspicion,
//! client deadline aborts — is written once against these three traits and
//! exercised twice: deterministically in `cargo test` over the in-process
//! [loopback](crate::loopback) implementation (virtual clock, no real
//! ports, no sleeps), and live over [TCP / Unix-domain
//! sockets](crate::tcp) in `qmxctl serve`.
//!
//! The traits are deliberately *poll-shaped*, not callback- or
//! future-shaped: every operation is non-blocking and returns immediately
//! with "here is what is ready now". The [node task](crate::node) is an
//! explicit state machine driven by [`Node::poll`](crate::node::Node::poll);
//! [`Transport::wait`] is the single place where real time (or the virtual
//! clock) passes. This is the same shape an async executor reduces to under
//! the hood, without hiding the scheduling decisions the deterministic
//! harness needs to control.
//!
//! Semantics contract, shared by all implementations:
//!
//! * [`Conn::send_bytes`] never blocks: bytes the kernel (or pipe) will not
//!   take immediately are buffered inside the connection and pushed by
//!   [`Conn::flush`]. An error means the connection is **dead** — no
//!   partial-failure recovery is attempted at this layer; the reliable
//!   transport above retransmits whatever mattered.
//! * [`Conn::recv_bytes`] appends whatever bytes are available *now* and
//!   returns how many. `Ok(0)` means "nothing yet"; an error (including
//!   [`std::io::ErrorKind::UnexpectedEof`] on a clean peer close) means the
//!   connection is dead.
//! * [`Listener::poll_accept`] returns at most one new connection per call,
//!   `None` when nobody is knocking.
//! * [`Transport::now_us`] is a monotone clock in microseconds — wall time
//!   since transport creation for the socket transports, the shared virtual
//!   clock for the loopback.

use std::io;

/// One bidirectional byte-stream connection.
pub trait Conn {
    /// Queues `bytes` for transmission, writing through as much as the
    /// underlying stream accepts without blocking. An error means the
    /// connection is dead and must be dropped.
    fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Appends all currently available incoming bytes to `buf`, returning
    /// how many arrived. `Ok(0)` = nothing available now; `Err` = the
    /// connection is dead (a clean peer close surfaces as
    /// [`std::io::ErrorKind::UnexpectedEof`]).
    fn recv_bytes(&mut self, buf: &mut Vec<u8>) -> io::Result<usize>;

    /// Pushes previously buffered outgoing bytes toward the peer. An error
    /// means the connection is dead.
    fn flush(&mut self) -> io::Result<()>;

    /// Human-readable peer address, for logs and diagnostics.
    fn peer_label(&self) -> String;
}

/// An accept socket.
pub trait Listener {
    /// The connection type this listener produces.
    type Conn: Conn;

    /// Accepts one pending connection, if any. `Err` means the listener
    /// itself broke.
    fn poll_accept(&mut self) -> io::Result<Option<Self::Conn>>;

    /// The address this listener is bound to.
    fn local_addr(&self) -> String;
}

/// A transport: a namespace of string addresses, a clock, and a way to
/// pass time.
///
/// Addresses are opaque strings interpreted by the implementation:
/// `host:port` for TCP, a filesystem path for Unix-domain sockets, any
/// label (conventionally `site-N`) for the loopback.
pub trait Transport {
    /// Connection type.
    type Conn: Conn;
    /// Listener type.
    type Listener: Listener<Conn = Self::Conn>;

    /// Binds a listener on `addr`.
    fn listen(&mut self, addr: &str) -> io::Result<Self::Listener>;

    /// Opens a connection to `addr`. Returns promptly; on the socket
    /// transports the TCP handshake may still be in flight (writes buffer
    /// until it completes), on the loopback a missing listener fails
    /// immediately with [`std::io::ErrorKind::ConnectionRefused`] — which
    /// is exactly what the reconnect-with-backoff path needs to see.
    fn connect(&mut self, addr: &str) -> io::Result<Self::Conn>;

    /// Monotone clock, microseconds.
    fn now_us(&mut self) -> u64;

    /// Lets time pass until roughly `until` (microseconds on this
    /// transport's clock), or until something might be ready. The socket
    /// transports sleep in small bounded slices (they cannot be notified);
    /// the loopback advances the shared virtual clock to the next event.
    /// `None` means "no deadline" — wait one polling slice.
    fn wait(&mut self, until: Option<u64>);
}
