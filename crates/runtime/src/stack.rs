//! Canonical protocol stack served by the networked runtime.
//!
//! The node is generic over [`Protocol`](qmx_core::Protocol); this module
//! pins the composition the paper's deployment uses — failure detection
//! over reliable delivery over a sharded multi-resource lock space over
//! the delay-optimal algorithm — and offers one builder so `qmxctl
//! serve`, the e2e tests, and the bench harness construct byte-identical
//! stacks.

use std::collections::BTreeSet;
use std::sync::Arc;

use qmx_core::{
    Config, DelayOptimal, Detector, DetectorConfig, HbMsg, LockSpace, Msg, Packet, QuorumSource,
    Reliable, ResMsg, SiteId, TransportConfig,
};

/// The full serving stack: `Detector<Reliable<LockSpace<DelayOptimal>>>`.
pub type ServeStack = Detector<Reliable<LockSpace<DelayOptimal>>>;

/// The wire message type the stack exchanges between sites.
pub type ServeMsg = HbMsg<Packet<ResMsg<Msg>>>;

/// Everything needed to build one site's [`ServeStack`].
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// All sites in the cluster.
    pub sites: Vec<SiteId>,
    /// This site's request quorum (used for every resource shard).
    pub quorum: Vec<SiteId>,
    /// Delay-optimal algorithm knobs; set `forwarding_enabled = false`
    /// for the `2T` arbiter-mediated baseline.
    pub algo: Config,
    /// Ack/retransmit tuning.
    pub transport: TransportConfig,
    /// Heartbeat/suspicion tuning.
    pub detector: DetectorConfig,
    /// With `true`, each shard gets a [`RingMajoritySource`] instead of
    /// the fixed `quorum`, enabling the paper's §6 quorum reconstruction:
    /// when a quorum member is suspected or confirmed failed, the
    /// requester rebuilds a majority from the live sites and re-issues.
    /// With `false` the fixed `quorum` is used and a site whose quorum
    /// member dies becomes inaccessible until it recovers.
    pub majority_reconstruct: bool,
}

impl StackConfig {
    /// A config for an `n`-site cluster where every site uses the full
    /// site set as its quorum (simple majority-free grid stand-in; real
    /// deployments pass quorums from `qmx-quorum`).
    pub fn all_sites(n: u32) -> Self {
        let sites: Vec<SiteId> = (0..n).map(SiteId).collect();
        StackConfig {
            quorum: sites.clone(),
            sites,
            algo: Config::default(),
            transport: TransportConfig::default(),
            detector: DetectorConfig::default(),
            majority_reconstruct: false,
        }
    }
}

/// Ring-majority quorum construction over `n` sites: the first
/// `⌊n/2⌋+1` *live* sites walking the ring from the requester. With no
/// failures this is exactly `{i, i+1, …} mod n`, the quorum shape the
/// deterministic harness uses, so enabling reconstruction does not
/// change steady-state traffic. Any two majorities of the same universe
/// intersect, so reconstruction never violates mutual exclusion.
#[derive(Debug, Clone)]
pub struct RingMajoritySource {
    n: u32,
}

impl RingMajoritySource {
    /// A source over sites `0..n`.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "need at least one site");
        RingMajoritySource { n }
    }
}

impl QuorumSource for RingMajoritySource {
    fn quorum_avoiding(&mut self, site: SiteId, down: &BTreeSet<SiteId>) -> Option<Vec<SiteId>> {
        let m = (self.n / 2 + 1) as usize;
        let mut q = Vec::with_capacity(m);
        for k in 0..self.n {
            let cand = SiteId((site.0 + k) % self.n);
            if !down.contains(&cand) {
                q.push(cand);
                if q.len() == m {
                    return Some(q);
                }
            }
        }
        None
    }

    fn box_clone(&self) -> Box<dyn QuorumSource> {
        Box::new(self.clone())
    }
}

/// Builds the serving stack for `site`.
pub fn build_stack(site: SiteId, cfg: &StackConfig) -> ServeStack {
    let quorum = cfg.quorum.clone();
    let algo = cfg.algo.clone();
    let n = cfg.sites.len() as u32;
    let reconstruct = cfg.majority_reconstruct;
    let space = LockSpace::new(
        site,
        Arc::new(move |_rid| {
            if reconstruct {
                DelayOptimal::with_quorum_source(
                    site,
                    algo.clone(),
                    Box::new(RingMajoritySource::new(n)),
                )
            } else {
                DelayOptimal::new(site, quorum.clone(), algo.clone())
            }
        }),
    );
    let peers: Vec<SiteId> = cfg.sites.iter().copied().filter(|&s| s != site).collect();
    Detector::new(Reliable::new(space, cfg.transport), peers, cfg.detector)
}
