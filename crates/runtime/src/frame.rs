//! Length-prefixed framing over a byte stream.
//!
//! Every message on a connection — peer protocol traffic and client
//! traffic alike — is one frame: a little-endian `u32` payload length
//! followed by that many payload bytes. The decoder is incremental
//! (frames may arrive split across arbitrarily many reads, or several per
//! read) and hostile-input safe: a claimed length above [`MAX_FRAME`] is
//! rejected *before* any allocation, so a garbage 4-byte prefix cannot
//! make the site task balloon memory or panic.

use std::fmt;

/// Hard cap on a single frame's payload, in bytes. Generous for the
/// protocol (whose largest messages are heartbeat site-lists) while small
/// enough that a hostile length prefix cannot cause a large allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Framing violation — the connection carrying it must be dropped, since
/// byte-stream sync is lost once a frame boundary is untrustworthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix claimed more than [`MAX_FRAME`] bytes.
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one `[u32 LE length][payload]` frame to `out`.
///
/// # Panics
/// If `payload` exceeds [`MAX_FRAME`] — outgoing frames are built by this
/// codebase, so an oversized one is a programming error, not a peer fault.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_FRAME,
        "outgoing frame exceeds MAX_FRAME"
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Incremental frame reassembly buffer for one connection.
///
/// Feed raw bytes into [`FrameBuf::buf_mut`] (the shape `Conn::recv_bytes`
/// expects), then drain complete frames with [`FrameBuf::next_frame`].
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw receive buffer; `Conn::recv_bytes` appends into this.
    pub fn buf_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame's payload, if one is fully
    /// buffered. `Ok(None)` means more bytes are needed. An error means
    /// the stream is corrupt and the connection must be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.start..self.start + 4].try_into().unwrap();
        let len = u32::from_le_bytes(len_bytes);
        if len as usize > MAX_FRAME {
            return Err(FrameError::Oversized { len });
        }
        let len = len as usize;
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let frame = self.buf[self.start + 4..self.start + 4 + len].to_vec();
        self.start += 4 + len;
        self.compact();
        Ok(Some(frame))
    }

    /// Reclaims consumed prefix space once it dominates the buffer.
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_and_batched() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello");
        write_frame(&mut wire, b"");
        write_frame(&mut wire, b"world!");
        let mut fb = FrameBuf::new();
        fb.buf_mut().extend_from_slice(&wire);
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(&b"world!"[..]));
        assert_eq!(fb.next_frame().unwrap(), None);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn dribble_one_byte_at_a_time() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"dribble");
        let mut fb = FrameBuf::new();
        for (i, b) in wire.iter().enumerate() {
            fb.buf_mut().push(*b);
            let got = fb.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert_eq!(got, None, "frame complete too early at byte {i}");
            } else {
                assert_eq!(got.as_deref(), Some(&b"dribble"[..]));
            }
        }
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut fb = FrameBuf::new();
        fb.buf_mut().extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            fb.next_frame(),
            Err(FrameError::Oversized { len: u32::MAX })
        );
        // The buffer did not try to reserve 4 GiB.
        assert!(fb.buf_mut().capacity() < 1024);
    }

    #[test]
    fn exactly_max_frame_is_accepted() {
        let payload = vec![0xabu8; MAX_FRAME];
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload);
        let mut fb = FrameBuf::new();
        fb.buf_mut().extend_from_slice(&wire);
        assert_eq!(fb.next_frame().unwrap().unwrap().len(), MAX_FRAME);
    }
}
