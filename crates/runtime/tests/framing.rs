//! Robustness of the framed wire against hostile or broken peers.
//!
//! A raw loopback connection speaks directly to a live [`Node`] (the
//! same object `qmxctl serve` runs) and sends malformed traffic:
//! truncated frames, oversized length prefixes, garbage payloads, and
//! valid frames carrying undecodable messages. The node must drop the
//! offending session — counting it in `bad_frames` — without panicking
//! and without wedging its healthy peers or clients.

use std::sync::Arc;

use qmx_core::wire::Wire;
use qmx_core::{ResourceId, SiteId};
use qmx_runtime::frame::{write_frame, FrameBuf, MAX_FRAME};
use qmx_runtime::loopback::{LoopConn, LoopNet};
use qmx_runtime::node::{Node, NodeConfig};
use qmx_runtime::proto::{ClientMsg, Hello, ServerMsg};
use qmx_runtime::stack::{build_stack, ServeStack, StackConfig};
use qmx_runtime::transport::{Conn, Transport};

/// One single-site cluster plus helpers to poke it with raw bytes.
struct Rig {
    net: LoopNet,
    node: Node<qmx_runtime::loopback::LoopTransport, ServeStack>,
}

impl Rig {
    fn new() -> Rig {
        let net = LoopNet::new(100);
        let cfg = StackConfig::all_sites(1);
        let proto = build_stack(SiteId(0), &cfg);
        let node = Node::new(
            net.transport(),
            proto,
            NodeConfig::new(SiteId(0), "srv".into(), Vec::new()),
        )
        .expect("bind");
        Rig { net, node }
    }

    fn dial(&self) -> LoopConn {
        self.net.transport().connect("srv").expect("dial")
    }

    /// Runs node + provided client conns for `rounds` delivery rounds.
    /// Ripe chunks addressed to raw client conns the test reads by hand
    /// keep `next_event` in the past; skip past them in fixed steps.
    fn spin(&mut self, rounds: u32) {
        for _ in 0..rounds {
            self.node.poll();
            let now = self.net.now();
            let next = self
                .net
                .next_event()
                .filter(|&t| t > now)
                .unwrap_or(now + 100);
            self.net.advance_to(next);
        }
        self.node.poll();
    }
}

fn hello_frame(id: u64) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, &Hello::Client { id }.to_bytes());
    out
}

/// Reads whatever `conn` has into decoded server messages.
fn read_msgs(conn: &mut LoopConn, fb: &mut FrameBuf) -> Vec<ServerMsg> {
    let _ = conn.recv_bytes(fb.buf_mut());
    let mut out = Vec::new();
    while let Ok(Some(frame)) = fb.next_frame() {
        out.push(ServerMsg::from_bytes(&frame).expect("server sends valid frames"));
    }
    out
}

#[test]
fn garbage_after_handshake_kills_only_that_session() {
    let mut rig = Rig::new();

    // A healthy client and an evil client connect.
    let mut good = rig.dial();
    good.send_bytes(&hello_frame(1)).unwrap();
    let mut evil = rig.dial();
    evil.send_bytes(&hello_frame(2)).unwrap();
    rig.spin(4);

    // Evil sends a well-framed but undecodable payload.
    let mut junk = Vec::new();
    write_frame(&mut junk, &[0xde, 0xad, 0xbe, 0xef, 0x99]);
    evil.send_bytes(&junk).unwrap();
    rig.spin(4);
    assert_eq!(rig.node.counters().bad_frames, 1);

    // The evil session is gone; the good one still works end-to-end.
    let mut fb = FrameBuf::new();
    let mut req = Vec::new();
    write_frame(
        &mut req,
        &ClientMsg::Acquire {
            rid: ResourceId(3),
            req: 1,
            wait_us: None,
        }
        .to_bytes(),
    );
    good.send_bytes(&req).unwrap();
    rig.spin(8);
    let msgs = read_msgs(&mut good, &mut fb);
    assert!(
        msgs.contains(&ServerMsg::Granted {
            rid: ResourceId(3),
            req: 1
        }),
        "healthy session wedged by neighbour's garbage: {msgs:?}"
    );
    assert_eq!(rig.node.counters().sessions_closed, 1);
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let mut rig = Rig::new();
    let mut evil = rig.dial();
    evil.send_bytes(&hello_frame(7)).unwrap();
    rig.spin(4);

    // Length prefix far beyond MAX_FRAME, no payload behind it.
    let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
    evil.send_bytes(&huge).unwrap();
    rig.spin(4);

    assert_eq!(rig.node.counters().bad_frames, 1);
    // The node reports the close back to the sender.
    let mut fb = FrameBuf::new();
    let dead = loop {
        match evil.recv_bytes(fb.buf_mut()) {
            Ok(0) => {
                rig.spin(2);
                continue;
            }
            Ok(_) => continue,
            Err(_) => break true,
        }
    };
    assert!(dead, "oversized frame did not close the session");
}

#[test]
fn truncated_frame_then_disconnect_releases_nothing_held() {
    let mut rig = Rig::new();

    // Hold a lock from a healthy session so teardown has work to skip.
    let mut good = rig.dial();
    good.send_bytes(&hello_frame(1)).unwrap();
    let mut req = Vec::new();
    write_frame(
        &mut req,
        &ClientMsg::Acquire {
            rid: ResourceId(1),
            req: 9,
            wait_us: None,
        }
        .to_bytes(),
    );
    good.send_bytes(&req).unwrap();
    rig.spin(8);

    // Evil sends half a frame (valid prefix, missing bytes) and hangs up.
    let mut evil = rig.dial();
    evil.send_bytes(&hello_frame(2)).unwrap();
    rig.spin(4);
    let mut framed = Vec::new();
    write_frame(&mut framed, &[1, 2, 3, 4, 5, 6, 7, 8]);
    evil.send_bytes(&framed[..framed.len() / 2]).unwrap();
    rig.spin(2);
    drop(evil);
    rig.spin(6);

    // The half-frame is not an error (it just never completes); the
    // disconnect tears the session down cleanly. The good session's lock
    // is untouched.
    assert_eq!(rig.node.counters().bad_frames, 0);
    assert_eq!(rig.node.held(), vec![(ResourceId(1), 9)]);
    assert_eq!(rig.node.counters().sessions_closed, 1);
}

#[test]
fn byte_dribble_and_batched_frames_both_decode() {
    let mut rig = Rig::new();
    let mut c = rig.dial();
    c.send_bytes(&hello_frame(1)).unwrap();
    rig.spin(4);

    // Two back-to-back requests in one write, then one dribbled out a
    // byte at a time: all three must be served.
    let mut batch = Vec::new();
    for (rid, req) in [(1u32, 1u64), (2, 2)] {
        write_frame(
            &mut batch,
            &ClientMsg::Acquire {
                rid: ResourceId(rid),
                req,
                wait_us: None,
            }
            .to_bytes(),
        );
    }
    c.send_bytes(&batch).unwrap();
    rig.spin(8);

    let mut dribble = Vec::new();
    write_frame(
        &mut dribble,
        &ClientMsg::Acquire {
            rid: ResourceId(3),
            req: 3,
            wait_us: None,
        }
        .to_bytes(),
    );
    for b in dribble {
        c.send_bytes(&[b]).unwrap();
        rig.spin(1);
    }
    rig.spin(8);

    let mut fb = FrameBuf::new();
    let msgs = read_msgs(&mut c, &mut fb);
    for (rid, req) in [(1u32, 1u64), (2, 2), (3, 3)] {
        assert!(
            msgs.contains(&ServerMsg::Granted {
                rid: ResourceId(rid),
                req
            }),
            "missing grant for rid {rid}: {msgs:?}"
        );
    }
    assert_eq!(rig.node.counters().bad_frames, 0);
}

#[test]
fn garbage_hello_is_rejected_before_classification() {
    let mut rig = Rig::new();
    let mut evil = rig.dial();
    // Valid framing, nonsense handshake tag.
    let mut out = Vec::new();
    write_frame(&mut out, &[42, 0, 0, 0, 0, 0, 0, 0, 0]);
    evil.send_bytes(&out).unwrap();
    rig.spin(4);
    assert_eq!(rig.node.counters().bad_frames, 1);
    assert_eq!(rig.node.counters().sessions_closed, 1);
    // The node survives and accepts a fresh, correct client.
    let mut good = rig.dial();
    good.send_bytes(&hello_frame(1)).unwrap();
    rig.spin(4);
    let mut fb = FrameBuf::new();
    let msgs = read_msgs(&mut good, &mut fb);
    assert!(matches!(msgs.as_slice(), [ServerMsg::Welcome { .. }]));
}

/// Random garbage sprayed at a node must never panic it. This is the
/// deterministic stand-in for a fuzzer: 64 seeds × 32 writes of random
/// length and content, interleaved with normal traffic.
#[test]
fn random_garbage_never_panics_the_node() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    for seed in 0..64u64 {
        let mut rig = Rig::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut evil = rig.dial();
        if rng.gen_bool(0.5) {
            // Half the runs handshake first so garbage lands on an
            // established session, half attack the classifier itself.
            evil.send_bytes(&hello_frame(99)).unwrap();
            rig.spin(2);
        }
        for _ in 0..32 {
            let len = rng.gen_range(1usize..64);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
            if evil.send_bytes(&bytes).is_err() {
                break; // node already closed us — fine
            }
            rig.spin(1);
        }
        rig.spin(4);
        // Whatever happened, the node still serves a healthy client.
        let mut good = rig.dial();
        good.send_bytes(&hello_frame(1)).unwrap();
        rig.spin(4);
        let mut fb = FrameBuf::new();
        let msgs = read_msgs(&mut good, &mut fb);
        assert!(
            matches!(msgs.as_slice(), [ServerMsg::Welcome { .. }]),
            "seed {seed}: node wedged after garbage spray: {msgs:?}"
        );
    }
}

/// Arc'd sanity: the suite above runs single-site; make sure garbage on a
/// *peer-classified* link (Hello::Peer then junk) also just drops the link.
#[test]
fn garbage_on_peer_link_drops_link_not_node() {
    let net = LoopNet::new(100);
    let cfg = StackConfig::all_sites(2);
    let mut nodes: Vec<Node<_, ServeStack>> = (0..2u32)
        .map(|s| {
            let proto = build_stack(SiteId(s), &cfg);
            let peers = (0..2u32)
                .filter(|&p| p != s)
                .map(|p| (SiteId(p), format!("s{p}")))
                .collect();
            Node::new(
                net.transport(),
                proto,
                NodeConfig::new(SiteId(s), format!("s{s}"), peers),
            )
            .expect("bind")
        })
        .collect();
    let _ = Arc::new(());

    // Let the real peer links come up.
    for _ in 0..16 {
        for n in nodes.iter_mut() {
            n.poll();
        }
        let now = net.now();
        let next = net.next_event().filter(|&t| t > now).unwrap_or(now + 100);
        net.advance_to(next);
    }

    // An impostor claims to be a peer, then sprays junk.
    let mut impostor = net.transport().connect("s0").expect("dial");
    let mut out = Vec::new();
    write_frame(
        &mut out,
        &Hello::Peer {
            site: SiteId(1),
            incarnation: 0,
        }
        .to_bytes(),
    );
    impostor.send_bytes(&out).unwrap();
    let mut junk = Vec::new();
    write_frame(&mut junk, &[0xff; 16]);
    impostor.send_bytes(&junk).unwrap();

    for _ in 0..16 {
        for n in nodes.iter_mut() {
            n.poll();
        }
        let now = net.now();
        let next = net.next_event().filter(|&t| t > now).unwrap_or(now + 100);
        net.advance_to(next);
    }

    assert!(nodes[0].counters().bad_frames >= 1);
    // Both real nodes are still alive and polling without panic.
    for n in nodes.iter_mut() {
        n.poll();
    }
}
