//! Partition-alphabet model checking: directed link cuts and restorations
//! (`CutLink` / `RestoreLink`) are explored exhaustively at small scope.
//! A checker cut is a delivery *embargo* — sends still queue in FIFO
//! order, so the cut's entire observable effect is scheduling — which is
//! pinned here both positively (a healed scope verifies, embargoed
//! messages flow after restore) and negatively (delivery across a cut
//! link is rejected, a permanent cut without a detector wedges, and both
//! engines agree on the wedge).

use qmx_check::{
    check_with, replay, replay_in_sim, sim_replayable, Action, CheckOptions, FaultBudget,
    ReplayOutcome, SimReplayOutcome, Violation, Workload,
};
use qmx_core::{Config, DelayOptimal, SiteId};

fn full_quorum(n: u32) -> Vec<Vec<SiteId>> {
    (0..n).map(|_| (0..n).map(SiteId).collect()).collect()
}

fn delay_optimal(quorums: Vec<Vec<SiteId>>) -> Vec<DelayOptimal> {
    quorums
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            DelayOptimal::new(
                SiteId(i as u32),
                q,
                Config {
                    forwarding_enabled: true,
                },
            )
        })
        .collect()
}

/// Fault-scope options: a site whose every quorum is unreachable must
/// block (§6), so its stall is exempt from deadlock verdicts.
fn fault_opts(max_states: usize, faults: FaultBudget) -> CheckOptions<DelayOptimal> {
    let mut o = CheckOptions::new(max_states);
    o.faults = faults;
    o.stuck_exempt = Some(DelayOptimal::is_inaccessible);
    o
}

fn cut(from: u32, to: u32) -> Action {
    Action::CutLink {
        from: SiteId(from),
        to: SiteId(to),
    }
}

fn restore(from: u32, to: u32) -> Action {
    Action::RestoreLink {
        from: SiteId(from),
        to: SiteId(to),
    }
}

fn deliver(from: u32, to: u32) -> Action {
    Action::Deliver {
        from: SiteId(from),
        to: SiteId(to),
    }
}

/// The headline partition scope (also the `BENCH_qmx.json` checker row):
/// two sites, one round each, up to two directed cuts with matching
/// restores. Because `restores >= cuts`, every branch can heal fully, so
/// safety *and* liveness must hold in every interleaving — asymmetric
/// views (S0 hears S1 while S1 does not hear S0), justified suspicions
/// on cut links, and post-heal suspicion withdrawal are all in scope.
#[test]
fn crash_free_partition_scope_verifies() {
    let stats = check_with(
        delay_optimal(full_quorum(2)),
        &Workload::uniform(2, 1),
        &fault_opts(20_000_000, FaultBudget::partitions(2, 2)),
    )
    .expect("healable partitions safe and live in every interleaving");
    assert!(stats.states > 1_000, "states = {}", stats.states);
    assert!(stats.terminals >= 1);
    assert!(
        stats.reduction_ratio() > 1.0,
        "sleep sets pruned nothing at the partition scope: {stats:?}"
    );
}

/// Client abort composed with partitions: a requester may give up while
/// the link carrying its request — or its `Abandon` withdrawal, or the
/// grant headed back to it — is embargoed by a cut. Every interleaving
/// of abort against cut/heal and the justified-suspicion machinery must
/// stay safe and leave the survivors live once the link heals.
#[test]
fn abort_under_partition_scope_verifies() {
    let stats = check_with(
        delay_optimal(full_quorum(2)),
        &Workload::uniform(2, 1),
        &fault_opts(20_000_000, FaultBudget::partitions(1, 1).with_aborts(1)),
    )
    .expect("abort x cut x heal safe and live in every interleaving");
    assert!(stats.states > 1_000, "states = {}", stats.states);
    assert!(stats.terminals >= 1);
}

/// A cut link embargoes delivery but does not lose messages: a request
/// sent while `S0 -> S1` is cut stays queued and flows after the
/// restore, completing the round. Both engines agree the trace is
/// violation-free — the simulator leg doubles as the pinned proof that
/// cut actions are pure scheduling constraints (they script nothing; the
/// delay script alone reproduces the embargo).
#[test]
fn embargoed_send_survives_cut_and_heals() {
    let trace = vec![
        cut(0, 1),
        Action::Request(SiteId(0)),
        restore(0, 1),
        deliver(0, 1),
        deliver(1, 0),
        Action::Exit(SiteId(0)),
        deliver(0, 1),
    ];
    let sites = delay_optimal(full_quorum(2));
    let workload = Workload::per_site(vec![1, 0]);
    let opts = fault_opts(1_000, FaultBudget::partitions(1, 1));
    assert_eq!(
        replay(sites.clone(), &workload, &opts, &trace),
        ReplayOutcome::Completed
    );
    assert!(sim_replayable(&trace));
    assert_eq!(
        replay_in_sim(sites, &workload, &opts, &trace),
        SimReplayOutcome::Completed
    );
}

/// Delivery across a cut link is not enabled: the per-direction FIFO
/// delivery gate must reject it until a restore lifts the embargo.
#[test]
#[should_panic(expected = "not enabled")]
fn delivery_across_cut_link_is_rejected() {
    let trace = vec![cut(0, 1), Action::Request(SiteId(0)), deliver(0, 1)];
    replay(
        delay_optimal(full_quorum(2)),
        &Workload::per_site(vec![1, 0]),
        &fault_opts(1_000, FaultBudget::partitions(1, 1)),
        &trace,
    );
}

/// A suspicion of a site behind a cut link is *justified* — the detector
/// really stops hearing from it — so it must not draw from the
/// `false_suspicions` budget, and it must be withdrawable once the link
/// heals. `FaultBudget::partitions` grants zero false suspicions, so this
/// trace only replays if the justified path is budget-free.
#[test]
fn justified_suspicion_on_cut_link_is_budget_free() {
    let trace = vec![
        cut(0, 1),
        Action::Suspect {
            at: SiteId(1),
            of: SiteId(0),
        },
        restore(0, 1),
        Action::Restore {
            at: SiteId(1),
            of: SiteId(0),
        },
    ];
    assert_eq!(
        replay(
            delay_optimal(full_quorum(2)),
            &Workload::uniform(2, 0),
            &fault_opts(1_000, FaultBudget::partitions(1, 1)),
            &trace,
        ),
        ReplayOutcome::Completed
    );
}

/// The reciprocal path is justified too: with `S0 -> S1` cut, S0 keeps
/// hearing S1 but S1's beats echo that it cannot hear S0 — the real
/// detector reciprocally suspects S1, so `Suspect{at: S0, of: S1}` must
/// be enabled budget-free in the same direction.
#[test]
fn reciprocal_suspicion_on_outbound_cut_is_budget_free() {
    let trace = vec![
        cut(0, 1),
        Action::Suspect {
            at: SiteId(0),
            of: SiteId(1),
        },
        restore(0, 1),
        Action::Restore {
            at: SiteId(0),
            of: SiteId(1),
        },
    ];
    assert_eq!(
        replay(
            delay_optimal(full_quorum(2)),
            &Workload::uniform(2, 0),
            &fault_opts(1_000, FaultBudget::partitions(1, 1)),
            &trace,
        ),
        ReplayOutcome::Completed
    );
}

/// Without a cut (and with zero `false_suspicions` budget) the same
/// suspicion is *un*justified and must not be enabled.
#[test]
#[should_panic(expected = "not enabled")]
fn unjustified_suspicion_needs_budget() {
    let trace = vec![Action::Suspect {
        at: SiteId(1),
        of: SiteId(0),
    }];
    replay(
        delay_optimal(full_quorum(2)),
        &Workload::uniform(2, 0),
        &fault_opts(1_000, FaultBudget::partitions(1, 1)),
        &trace,
    );
}

/// Suspicion withdrawal must wait for the heal: while `S0 -> S1` stays
/// cut, S1 cannot hear from S0, so `Restore{at: S1, of: S0}` is gated
/// off — a detector cannot withdraw a suspicion of a site it still
/// cannot hear.
#[test]
#[should_panic(expected = "not enabled")]
fn suspicion_withdrawal_gated_until_heal() {
    let trace = vec![
        cut(0, 1),
        Action::Suspect {
            at: SiteId(1),
            of: SiteId(0),
        },
        Action::Restore {
            at: SiteId(1),
            of: SiteId(0),
        },
    ];
    replay(
        delay_optimal(full_quorum(2)),
        &Workload::uniform(2, 0),
        &fault_opts(1_000, FaultBudget::partitions(1, 1)),
        &trace,
    );
}

/// The reciprocal withdrawal is gated on the *outbound* heal: with
/// `S0 -> S1` cut, S0's suspicion of S1 is the echo-fed reciprocal kind,
/// and S1 keeps echoing "I cannot hear you" until that very link heals —
/// so `Restore{at: S0, of: S1}` must stay off while the cut persists.
/// (Regression: an inbound-only gate here let the checker alternate a
/// still-justified re-suspicion with withdrawal, re-issuing the
/// suspect's parked request with ever-fresh clocks — an unbounded state
/// graph.)
#[test]
#[should_panic(expected = "not enabled")]
fn reciprocal_withdrawal_gated_until_outbound_heal() {
    let trace = vec![
        cut(0, 1),
        Action::Suspect {
            at: SiteId(0),
            of: SiteId(1),
        },
        Action::Restore {
            at: SiteId(0),
            of: SiteId(1),
        },
    ];
    replay(
        delay_optimal(full_quorum(2)),
        &Workload::uniform(2, 0),
        &fault_opts(1_000, FaultBudget::partitions(1, 1)),
        &trace,
    );
}

/// A permanent cut with no detector in scope wedges the requester whose
/// quorum sits behind the severed link — and the checker pins it as a
/// deadlock, with both engines agreeing on the wedge. This is the
/// partition analogue of the pinned message-drop deadlock: it documents
/// that the bare protocol needs the detector/reconciliation layer (or a
/// heal) to survive partitions, which is exactly what the scope above
/// verifies.
#[test]
fn permanent_cut_without_detector_wedges_and_both_engines_agree() {
    let mut faults = FaultBudget {
        cuts: 1,
        ..FaultBudget::default()
    };
    faults.detector = false;
    let sites = delay_optimal(full_quorum(2));
    let workload = Workload::uniform(2, 1);
    let opts = fault_opts(20_000_000, faults);
    let err = check_with(sites.clone(), &workload, &opts).unwrap_err();
    let Violation::Deadlock { ref trace, .. } = err else {
        panic!("expected deadlock, got {err}");
    };
    assert!(
        trace.iter().any(|a| matches!(a, Action::CutLink { .. })),
        "counterexample must involve the cut: {trace:?}"
    );
    assert!(matches!(
        replay(sites.clone(), &workload, &opts, trace),
        ReplayOutcome::Deadlock { .. }
    ));
    assert!(sim_replayable(trace), "cut traces script into the sim");
    assert!(matches!(
        replay_in_sim(sites, &workload, &opts, trace),
        SimReplayOutcome::Wedged { .. }
    ));
}

/// The partition scope's DPOR reduction is sound: sleep sets must visit
/// the exact same state set (and find the same verdict) as the naive
/// exploration — they prune transition orders, never states. This is the
/// differential oracle for the cut-action dependency/ownership rules.
#[test]
fn partition_scope_dpor_agrees_with_naive_dfs() {
    let workload = Workload::uniform(2, 1);
    let faults = FaultBudget::partitions(1, 1);
    let mut naive = fault_opts(20_000_000, faults);
    naive.sleep_sets = false;
    let full = check_with(delay_optimal(full_quorum(2)), &workload, &naive)
        .expect("naive partition exploration verifies");
    let reduced = check_with(
        delay_optimal(full_quorum(2)),
        &workload,
        &fault_opts(20_000_000, faults),
    )
    .expect("reduced partition exploration verifies");
    assert_eq!(
        full.states, reduced.states,
        "sleep sets must not prune states"
    );
    assert_eq!(full.terminals, reduced.terminals);
    assert_eq!(full.naive_transitions, reduced.naive_transitions);
    assert!(
        reduced.transitions < full.transitions,
        "reduction fired: {} vs {}",
        reduced.transitions,
        full.transitions
    );
}
