//! Exhaustive verification of every algorithm at small scope: all
//! FIFO-respecting interleavings of requests, deliveries and exits are
//! explored; mutual exclusion and deadlock freedom hold in each.
//!
//! Within these scopes this is a *proof* of Theorems 1 and 2 of the paper
//! (and of the baselines' classic results), not a sampling argument.

use qmx_baselines::{
    CarvalhoRoucairol, Lamport, Maekawa, Raymond, RicartAgrawala, SinghalDynamic, SuzukiKasami,
};
use qmx_check::{check, CheckStats, Workload};
use qmx_core::{Config, DelayOptimal, SiteId};

fn full_quorum(n: u32) -> Vec<Vec<SiteId>> {
    (0..n).map(|_| (0..n).map(SiteId).collect()).collect()
}

fn delay_optimal(quorums: Vec<Vec<SiteId>>, forwarding: bool) -> Vec<DelayOptimal> {
    quorums
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            DelayOptimal::new(
                SiteId(i as u32),
                q,
                Config {
                    forwarding_enabled: forwarding,
                },
            )
        })
        .collect()
}

#[test]
fn delay_optimal_three_sites_full_quorum_exhaustive() {
    let stats = check(
        delay_optimal(full_quorum(3), true),
        &Workload::uniform(3, 1),
        2_000_000,
    )
    .expect("all interleavings safe and live");
    // ~94k states; meaningful exploration happened.
    assert!(stats.states > 50_000, "states = {}", stats.states);
    assert!(stats.terminals >= 1);
}

#[test]
fn delay_optimal_paper_coterie_exhaustive() {
    // The coterie from §2 of the paper: C = {{a,b},{b,c}} with b = S1 the
    // common arbiter. Asymmetric quorums exercise the proxy-forwarding
    // paths differently from the symmetric full-quorum case.
    let quorums = vec![
        vec![SiteId(0), SiteId(1)],
        vec![SiteId(1), SiteId(2)],
        vec![SiteId(1), SiteId(2)],
    ];
    let stats = check(
        delay_optimal(quorums.clone(), true),
        &Workload::uniform(3, 2),
        5_000_000,
    )
    .expect("paper coterie verified");
    assert!(stats.states > 1_000);

    // Same coterie with forwarding disabled (the ablation) must also hold.
    let stats = check(
        delay_optimal(quorums, false),
        &Workload::uniform(3, 2),
        5_000_000,
    )
    .expect("ablation verified");
    assert!(stats.states > 500);
}

#[test]
fn delay_optimal_two_sites_three_rounds_exhaustive() {
    let stats = check(
        delay_optimal(full_quorum(2), true),
        &Workload::uniform(2, 3),
        1_000_000,
    )
    .expect("repeated rounds verified");
    assert!(stats.states > 1_000);
}

#[test]
fn delay_optimal_disjoint_arbiter_exhaustive() {
    // A dedicated arbiter (site 2) that never requests: quorums {0,2} and
    // {1,2} — the smallest scope where ALL grants to one requester flow
    // through an arbiter that is not in the other's quorum.
    let quorums = vec![
        vec![SiteId(0), SiteId(2)],
        vec![SiteId(1), SiteId(2)],
        vec![SiteId(2)],
    ];
    let stats = check(
        delay_optimal(quorums, true),
        &Workload::per_site(vec![2, 2, 0]),
        5_000_000,
    )
    .expect("dedicated arbiter verified");
    assert!(stats.states > 500);
}

fn assert_verified(stats: CheckStats, label: &str) {
    assert!(stats.states > 50, "{label}: states = {}", stats.states);
    assert!(stats.terminals >= 1, "{label}: no terminal state");
}

#[test]
fn maekawa_exhaustive() {
    let sites: Vec<Maekawa> = (0..3)
        .map(|i| Maekawa::new(SiteId(i), (0..3).map(SiteId).collect()))
        .collect();
    let stats = check(sites, &Workload::uniform(3, 1), 2_000_000).expect("maekawa verified");
    assert_verified(stats, "maekawa");
}

#[test]
fn lamport_exhaustive() {
    let sites: Vec<Lamport> = (0..3).map(|i| Lamport::new(SiteId(i), 3)).collect();
    let stats = check(sites, &Workload::uniform(3, 1), 2_000_000).expect("lamport verified");
    assert_verified(stats, "lamport");
}

#[test]
fn ricart_agrawala_exhaustive() {
    let sites: Vec<RicartAgrawala> = (0..3).map(|i| RicartAgrawala::new(SiteId(i), 3)).collect();
    let stats = check(sites, &Workload::uniform(3, 1), 2_000_000).expect("ra verified");
    assert_verified(stats, "ricart-agrawala");
}

#[test]
fn suzuki_kasami_exhaustive() {
    let sites: Vec<SuzukiKasami> = (0..3).map(|i| SuzukiKasami::new(SiteId(i), 3)).collect();
    let stats = check(sites, &Workload::uniform(3, 2), 2_000_000).expect("sk verified");
    assert_verified(stats, "suzuki-kasami");
}

#[test]
fn raymond_exhaustive() {
    let sites: Vec<Raymond> = (0..3).map(|i| Raymond::new(SiteId(i), 3)).collect();
    let stats = check(sites, &Workload::uniform(3, 2), 2_000_000).expect("raymond verified");
    assert_verified(stats, "raymond");
}

#[test]
fn carvalho_roucairol_exhaustive() {
    let sites: Vec<CarvalhoRoucairol> = (0..3)
        .map(|i| CarvalhoRoucairol::new(SiteId(i), 3))
        .collect();
    let stats = check(sites, &Workload::uniform(3, 2), 2_000_000).expect("cr verified");
    assert_verified(stats, "carvalho-roucairol");
}

#[test]
fn singhal_dynamic_exhaustive() {
    let sites: Vec<SinghalDynamic> = (0..3).map(|i| SinghalDynamic::new(SiteId(i), 3)).collect();
    let stats = check(sites, &Workload::uniform(3, 2), 2_000_000).expect("singhal verified");
    assert_verified(stats, "singhal-dynamic");
}

#[test]
fn delay_optimal_grid_quorums_four_sites_exhaustive() {
    // 2x2 grid: site i's quorum is its row ∪ column (K = 3), the smallest
    // scope with *asymmetric overlapping* quorums where a site arbitrates
    // for some-but-not-all others. One round each.
    let quorums: Vec<Vec<SiteId>> = (0..4)
        .map(|s| {
            let (r, c) = (s / 2, s % 2);
            let mut q = vec![
                SiteId((r * 2) as u32),
                SiteId((r * 2 + 1) as u32),
                SiteId(c as u32),
                SiteId((2 + c) as u32),
            ];
            q.sort_unstable();
            q.dedup();
            q
        })
        .collect();
    let stats = check(
        delay_optimal(quorums, true),
        &Workload::per_site(vec![1, 1, 1, 0]),
        20_000_000,
    )
    .expect("grid quorums verified");
    assert!(stats.states > 10_000, "states = {}", stats.states);
}
