//! Fault-alphabet model checking: the §6 reclamation, answer-gated
//! rejoin, and incarnation-fencing paths are explored exhaustively at
//! small scope, and every counterexample trace replays both through the
//! checker semantics and (when expressible) through `qmx-sim` as a
//! differential check that the two engines agree on the violation.

use qmx_baselines::Maekawa;
use qmx_check::{
    check, check_with, replay, replay_in_sim, sim_replayable, Action, CheckOptions, FaultBudget,
    ReplayOutcome, SimReplayOutcome, Violation, Workload,
};
use qmx_core::{Config, DelayOptimal, SiteId};

fn full_quorum(n: u32) -> Vec<Vec<SiteId>> {
    (0..n).map(|_| (0..n).map(SiteId).collect()).collect()
}

/// The 3-site ring coterie {0,1} / {1,2} / {2,0}: pairwise-intersecting,
/// and any single crash leaves exactly one site with an intact quorum.
fn ring_coterie() -> Vec<Vec<SiteId>> {
    vec![
        vec![SiteId(0), SiteId(1)],
        vec![SiteId(1), SiteId(2)],
        vec![SiteId(2), SiteId(0)],
    ]
}

fn delay_optimal(quorums: Vec<Vec<SiteId>>) -> Vec<DelayOptimal> {
    quorums
        .into_iter()
        .enumerate()
        .map(|(i, q)| {
            DelayOptimal::new(
                SiteId(i as u32),
                q,
                Config {
                    forwarding_enabled: true,
                },
            )
        })
        .collect()
}

/// Fault-scope options: §6 says an inaccessible site (no live quorum
/// left) must block, so its stall is exempt from deadlock verdicts.
fn fault_opts(max_states: usize, faults: FaultBudget) -> CheckOptions<DelayOptimal> {
    let mut o = CheckOptions::new(max_states);
    o.faults = faults;
    o.stuck_exempt = Some(DelayOptimal::is_inaccessible);
    o
}

#[test]
fn crash_reclamation_ring_coterie_verifies() {
    // One silent crash, no recovery: suspicion of the dead site, the
    // fail_confirm escalation, and §6 lock reclamation must keep every
    // still-accessible site safe and live in every interleaving.
    let stats = check_with(
        delay_optimal(ring_coterie()),
        &Workload::uniform(3, 1),
        &fault_opts(20_000_000, FaultBudget::crash_recover(1, 0)),
    )
    .expect("reclamation safe and live in every interleaving");
    assert!(stats.states > 10_000, "states = {}", stats.states);
    assert!(stats.terminals >= 1);
    assert!(
        stats.reduction_ratio() > 1.0,
        "sleep sets pruned nothing at a fault scope: {stats:?}"
    );
}

#[test]
fn crash_recovery_rejoin_duo_verifies() {
    // Crash plus restart: the answer-gated rejoin window, the rejoin
    // notices, and incarnation fencing of pre-crash messages are all in
    // scope. The recovered site re-enters with pristine state and a
    // bumped incarnation; every interleaving must stay safe.
    let stats = check_with(
        delay_optimal(full_quorum(2)),
        &Workload::uniform(2, 1),
        &fault_opts(20_000_000, FaultBudget::crash_recover(1, 1)),
    )
    .expect("crash + rejoin safe and live in every interleaving");
    assert!(stats.states > 1_000, "states = {}", stats.states);
    assert!(stats.terminals >= 1);
}

#[test]
fn stale_grant_claimed_through_rejoin_handshake_ring() {
    // Regression for a checker-model FIFO bug that surfaced as a phantom
    // mutual-exclusion violation: an arbiter grants its permission (reply
    // in flight), crashes, and recovers. Per-link FIFO puts that
    // pre-crash reply *ahead* of the recovered site's Rejoin announcement
    // on the same link, so the grantee always receives the grant before
    // the rejoin notice — and therefore reports it in its Claim answer,
    // letting the pristine arbiter relearn the lock. A model that
    // delivered the stale grant *after* the notice instead leaked the
    // permission past the handshake and "found" two sites in the CS. The
    // ring coterie makes the hazard real: the grantee's quorum does not
    // contain the surviving third site, so nothing else blocks the
    // recovered arbiter from self-granting.
    let stats = check_with(
        delay_optimal(ring_coterie()),
        &Workload::uniform(3, 1),
        &fault_opts(50_000_000, FaultBudget::crash_recover(1, 1)),
    )
    .expect("stale pre-crash grants must be claimed, not leaked");
    assert!(stats.states > 50_000, "states = {}", stats.states);
}

#[test]
fn abort_crash_recovery_duo_verifies() {
    // Client abort composed with the §6 crash machinery: a site may give
    // up on its unfulfilled request at any point — including while its
    // `Abandon` races a crash, the answer-gated rejoin, or a grant
    // forwarded by the previous holder — and every interleaving must
    // still be safe and leave the survivors live. This is the checker
    // scope behind `qmxctl check --aborts`.
    let stats = check_with(
        delay_optimal(full_quorum(2)),
        &Workload::uniform(2, 1),
        &fault_opts(20_000_000, FaultBudget::crash_recover(1, 1).with_aborts(1)),
    )
    .expect("abort x crash x rejoin safe and live in every interleaving");
    assert!(stats.states > 1_000, "states = {}", stats.states);
    assert!(stats.terminals >= 1);
}

#[test]
fn false_suspicion_restore_duo_verifies() {
    // A detector that wrongly suspects a live site must withdraw the
    // suspicion (restore) without ever breaking safety; the §6 re-grant
    // hazard lives on this path.
    let faults = FaultBudget {
        false_suspicions: 1,
        detector: true,
        ..FaultBudget::none()
    };
    let stats = check_with(
        delay_optimal(full_quorum(2)),
        &Workload::uniform(2, 2),
        &fault_opts(20_000_000, faults),
    )
    .expect("false suspicion + restore safe in every interleaving");
    assert!(stats.states > 1_000, "states = {}", stats.states);
}

#[test]
fn message_drop_deadlock_pinned_and_replayed() {
    // Lossy channels: the bare protocol has no retransmission layer, so
    // a dropped Request is a *genuine* liveness hole — nothing ever
    // re-sends it, and the §6 detector cannot help (the sender is alive,
    // there is no verdict to act on). The checker must find that wedge —
    // and must never find anything worse: a mutual-exclusion breach here
    // would be a real safety regression, drops may only cost liveness.
    let faults = FaultBudget {
        drops: 1,
        ..FaultBudget::none()
    };
    let workload = Workload::uniform(2, 1);
    let opts = fault_opts(20_000_000, faults);
    let v = check_with(delay_optimal(full_quorum(2)), &workload, &opts)
        .expect_err("a lost request wedges its sender");
    let Violation::Deadlock { trace, stuck } = v else {
        panic!("drops must only cost liveness, got {v}");
    };
    assert!(
        trace.iter().any(|a| matches!(a, Action::Drop { .. })),
        "the wedge must involve the drop: {trace:?}"
    );
    assert_eq!(
        replay(delay_optimal(full_quorum(2)), &workload, &opts, &trace),
        ReplayOutcome::Deadlock {
            stuck: stuck.clone()
        },
        "checker replay must reproduce the deadlock"
    );
    if sim_replayable(&trace) {
        assert_eq!(
            replay_in_sim(delay_optimal(full_quorum(2)), &workload, &opts, &trace),
            SimReplayOutcome::Wedged { stuck },
            "simulator replay must reproduce the deadlock"
        );
    }
}

#[test]
fn undetected_crash_wedges_and_both_engines_agree() {
    // Ablation of §6: a crash with the detector alphabet disabled. The
    // survivor waits forever on the dead arbiter — the checker must find
    // the wedge, and the trace must reproduce it through the checker
    // replay AND through the discrete-event simulator.
    let faults = FaultBudget {
        crashes: 1,
        ..FaultBudget::none()
    };
    let workload = Workload::uniform(2, 1);
    let opts = fault_opts(20_000_000, faults);
    let v = check_with(delay_optimal(full_quorum(2)), &workload, &opts)
        .expect_err("no detector, no reclamation: the survivor wedges");
    let Violation::Deadlock { trace, stuck } = v else {
        panic!("expected a deadlock, got {v}");
    };
    assert!(!stuck.is_empty());
    assert_eq!(
        replay(delay_optimal(full_quorum(2)), &workload, &opts, &trace),
        ReplayOutcome::Deadlock {
            stuck: stuck.clone()
        },
        "checker replay must reproduce the deadlock"
    );
    assert!(
        sim_replayable(&trace),
        "crash-only traces have a deterministic simulator schedule"
    );
    assert_eq!(
        replay_in_sim(delay_optimal(full_quorum(2)), &workload, &opts, &trace),
        SimReplayOutcome::Wedged { stuck },
        "simulator replay must reproduce the deadlock"
    );
}

#[test]
fn maekawa_without_yield_deadlock_pinned() {
    // The classic Maekawa hazard: without the INQUIRE/YIELD triad, two
    // overlapping requests each win their local arbiter and silently
    // queue the other — a cyclic wait. Pinned as a Deadlock trace
    // regression, replayed through both engines.
    let req = vec![SiteId(0), SiteId(1)];
    let sites = || -> Vec<Maekawa> {
        (0..2)
            .map(|i| Maekawa::without_yield(SiteId(i), req.clone()))
            .collect()
    };
    let workload = Workload::uniform(2, 1);
    let v = check(sites(), &workload, 1_000_000).expect_err("classic cyclic deadlock");
    let Violation::Deadlock { trace, stuck } = v else {
        panic!("expected a deadlock, got {v}");
    };
    assert_eq!(stuck, vec![SiteId(0), SiteId(1)], "both requesters hang");
    // The shortest such trace: both request, both deliveries happen, no
    // grant ever completes — so the trace is pure request/deliver.
    assert!(trace.len() >= 4, "trace: {trace:?}");
    let opts = CheckOptions::new(1_000_000);
    assert_eq!(
        replay(sites(), &workload, &opts, &trace),
        ReplayOutcome::Deadlock {
            stuck: stuck.clone()
        }
    );
    assert!(sim_replayable(&trace));
    assert_eq!(
        replay_in_sim(sites(), &workload, &opts, &trace),
        SimReplayOutcome::Wedged { stuck }
    );
    // The yield-enabled variant at the identical scope is deadlock-free:
    // the triad, not luck, is what restores liveness.
    let good: Vec<Maekawa> = (0..2)
        .map(|i| Maekawa::new(SiteId(i), req.clone()))
        .collect();
    check(good, &workload, 1_000_000).expect("yield restores liveness");
}

#[test]
fn fault_scope_dpor_agrees_with_naive_dfs() {
    // Differential oracle at a fault scope: sleep sets must visit the
    // exact same state set (and find the same verdict) as the naive
    // exploration — they prune transition orders, never states.
    let faults = FaultBudget::crash_recover(1, 0);
    let workload = Workload::uniform(2, 1);
    let mut naive = fault_opts(20_000_000, faults);
    naive.sleep_sets = false;
    let full = check_with(delay_optimal(full_quorum(2)), &workload, &naive)
        .expect("naive fault exploration verifies");
    let reduced = check_with(
        delay_optimal(full_quorum(2)),
        &workload,
        &fault_opts(20_000_000, faults),
    )
    .expect("reduced fault exploration verifies");
    assert_eq!(
        full.states, reduced.states,
        "sleep sets must not prune states"
    );
    assert_eq!(full.terminals, reduced.terminals);
    assert_eq!(full.naive_transitions, reduced.naive_transitions);
    assert_eq!(full.transitions as u64, full.naive_transitions);
    assert!(
        reduced.transitions < full.transitions,
        "reduction fired: {} vs {}",
        reduced.transitions,
        full.transitions
    );
}
