//! The stateful DFS explorer with sleep-set partial-order reduction and
//! parallel subtree fan-out.
//!
//! # Algorithm
//!
//! This is the sleep-set component of dynamic partial-order reduction
//! (Flanagan & Godefroid, POPL 2005), in the stateful form that combines
//! soundly with state caching (Godefroid's selective-search formulation):
//!
//! * Exploring state `s` under sleep set `Z`, the explorer fires
//!   `enabled(s) \ Z` in a fixed order. The child of action `aᵢ` inherits
//!   sleep `{ b ∈ Z ∪ {a₀…aᵢ₋₁} : independent(b, aᵢ) }` — orderings that
//!   run a sibling (or an already-slept action) *after* an action it
//!   commutes with are permutations of orderings explored elsewhere.
//! * The visited map stores, per state fingerprint, the sleep set the
//!   state was (cumulatively) explored under. Revisiting with sleep `Z'`:
//!   if `stored ⊆ Z'` the state is fully covered and the walk prunes;
//!   otherwise only `stored \ Z'` — transitions slept on every earlier
//!   visit but live now — are re-expanded, and the stored set shrinks to
//!   `stored ∩ Z'`. The intersection strictly shrinks on every re-expansion,
//!   so termination is preserved.
//!
//! Sleep sets never prune *states* — every reachable state is still
//! visited, which is exactly why safety checking (a state predicate) and
//! the existing state-count assertions survive the rebuild unchanged —
//! they prune redundant *transitions* between them. The reduction ratio in
//! [`CheckStats`] is the measured factor: Σ|enabled| over distinct states
//! (what the naive explorer executes) over transitions actually taken.
//!
//! # Parallel fan-out
//!
//! With `jobs > 1` the root region up to [`FRONTIER_DEPTH`] is explored
//! sequentially; every frame that would be pushed at that depth is deferred
//! into a frontier work list instead, then the items fan out over
//! [`qmx_workload::parallel::par_map`] with one independent explorer (own
//! visited map) per item. Workers share nothing, so per-item results are
//! deterministic and independent of the worker count; cross-subtree
//! deduplication is lost, so `states`/`transitions` become upper bounds
//! (the sequential `jobs = 1` mode keeps exact dedup'd counts). The first
//! violation in frontier order wins, so counterexamples are deterministic
//! too.

use crate::state::{independent, Ctx, State};
use crate::{Action, CheckStats, Violation};
use qmx_core::{Effects, Protocol, SiteId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

/// Depth at which subtrees are handed to worker explorers when `jobs > 1`.
const FRONTIER_DEPTH: usize = 3;

pub(crate) struct FrontierItem<P: Protocol> {
    state: State<P>,
    sleep: Vec<Action>,
    prefix: Vec<Action>,
}

struct Frame<P: Protocol> {
    state: State<P>,
    /// Unexplored enabled actions; popped from the back.
    pending: Vec<Action>,
    /// Actions already fired from this state (here or on an earlier visit).
    done: Vec<Action>,
    /// Sleep set this state is being explored under.
    sleep: Vec<Action>,
}

pub(crate) struct Explorer<'c, P: Protocol> {
    ctx: &'c Ctx<P>,
    visited: HashMap<u128, Box<[Action]>>,
    pub(crate) stats: CheckStats,
    fx: Effects<P::Msg>,
    sent: Vec<(SiteId, SiteId)>,
    /// Deferred subtrees (only collected when `frontier_depth` is set).
    frontier_depth: Option<usize>,
    pub(crate) frontier: Vec<FrontierItem<P>>,
}

impl<'c, P> Explorer<'c, P>
where
    P: Protocol + Clone + fmt::Debug,
{
    pub(crate) fn new(ctx: &'c Ctx<P>, collect_frontier: bool) -> Self {
        Explorer {
            ctx,
            visited: HashMap::new(),
            stats: CheckStats::default(),
            fx: Effects::new(),
            sent: Vec::new(),
            frontier_depth: collect_frontier.then_some(FRONTIER_DEPTH),
            frontier: Vec::new(),
        }
    }

    fn child_sleep(frame: &Frame<P>, action: Action) -> Vec<Action> {
        let mut sleep = Vec::new();
        for &b in frame.sleep.iter().chain(frame.done.iter()) {
            if independent(b, action) && !sleep.contains(&b) {
                sleep.push(b);
            }
        }
        sleep
    }

    /// Checks a terminal (no enabled action) state: every live, non-exempt
    /// site must be served.
    fn terminal(&mut self, s: &State<P>, trace: Vec<Action>) -> Result<(), Violation> {
        let stuck = s.stuck_sites(self.ctx);
        if !stuck.is_empty() || s.undone(self.ctx) {
            return Err(Violation::Deadlock { trace, stuck });
        }
        self.stats.terminals += 1;
        Ok(())
    }

    /// Explores exhaustively from `root` under `root_sleep`. `prefix` is
    /// the action path that reached `root` (prepended to counterexample
    /// traces). `count_root` is false for frontier items whose root was
    /// already counted by the sequential phase.
    pub(crate) fn run(
        &mut self,
        root: State<P>,
        root_sleep: Vec<Action>,
        prefix: &[Action],
        count_root: bool,
    ) -> Result<(), Violation> {
        let use_sleep = self.ctx.opts.sleep_sets;
        let mut path: Vec<Action> = Vec::new();
        let full_trace = |path: &[Action]| {
            let mut t = prefix.to_vec();
            t.extend_from_slice(path);
            t
        };

        let occ = root.in_cs_sites();
        if occ.len() > 1 {
            return Err(Violation::MutualExclusion {
                trace: full_trace(&path),
                sites: (occ[0], occ[1]),
            });
        }
        let fp = root.fingerprint(self.ctx);
        self.visited
            .insert(fp, root_sleep.clone().into_boxed_slice());
        if count_root {
            self.stats.states += 1;
        }
        let enabled = root.enabled(self.ctx);
        self.stats.naive_transitions += enabled.len() as u64;
        if enabled.is_empty() {
            return self.terminal(&root, full_trace(&path));
        }
        let pending: Vec<Action> = if use_sleep {
            enabled
                .iter()
                .copied()
                .filter(|a| !root_sleep.contains(a))
                .collect()
        } else {
            enabled
        };
        if pending.is_empty() {
            return Ok(());
        }
        let mut stack: Vec<Frame<P>> = vec![Frame {
            state: root,
            pending,
            done: Vec::new(),
            sleep: root_sleep,
        }];

        while let Some(frame) = stack.last_mut() {
            let Some(action) = frame.pending.pop() else {
                stack.pop();
                path.pop();
                continue;
            };
            let child_sleep = if use_sleep {
                Self::child_sleep(frame, action)
            } else {
                Vec::new()
            };
            let mut next = frame.state.clone();
            next.apply(action, self.ctx, &mut self.fx, &mut self.sent);
            self.sent.clear();
            frame.done.push(action);
            path.push(action);
            self.stats.transitions += 1;
            let depth = prefix.len() + path.len();
            if depth > self.stats.max_depth {
                self.stats.max_depth = depth;
            }

            let occ = next.in_cs_sites();
            if occ.len() > 1 {
                return Err(Violation::MutualExclusion {
                    trace: full_trace(&path),
                    sites: (occ[0], occ[1]),
                });
            }

            let fp = next.fingerprint(self.ctx);
            match self.visited.entry(fp) {
                Entry::Vacant(e) => {
                    e.insert(child_sleep.clone().into_boxed_slice());
                    self.stats.states += 1;
                    if self.stats.states > self.ctx.opts.max_states {
                        return Err(Violation::StateLimit {
                            limit: self.ctx.opts.max_states,
                        });
                    }
                    if self.frontier_depth == Some(path.len()) {
                        // Hand the whole subtree to a worker; it recounts
                        // enabled/terminal bookkeeping from this root.
                        self.frontier.push(FrontierItem {
                            state: next,
                            sleep: child_sleep,
                            prefix: full_trace(&path),
                        });
                        path.pop();
                        continue;
                    }
                    let enabled = next.enabled(self.ctx);
                    self.stats.naive_transitions += enabled.len() as u64;
                    if enabled.is_empty() {
                        self.terminal(&next, full_trace(&path))?;
                        path.pop();
                        continue;
                    }
                    let pending: Vec<Action> = if use_sleep {
                        enabled
                            .iter()
                            .copied()
                            .filter(|a| !child_sleep.contains(a))
                            .collect()
                    } else {
                        enabled
                    };
                    if pending.is_empty() {
                        // Fully slept: the state is visited (and safety-
                        // checked); its expansions are covered elsewhere.
                        path.pop();
                        continue;
                    }
                    stack.push(Frame {
                        state: next,
                        pending,
                        done: Vec::new(),
                        sleep: child_sleep,
                    });
                }
                Entry::Occupied(mut e) => {
                    if !use_sleep {
                        path.pop();
                        continue;
                    }
                    let stored = e.get();
                    // Transitions slept on every earlier visit but awake
                    // now must still be explored from this state.
                    let need: Vec<Action> = stored
                        .iter()
                        .copied()
                        .filter(|b| !child_sleep.contains(b))
                        .collect();
                    if need.is_empty() {
                        path.pop();
                        continue;
                    }
                    let new_stored: Box<[Action]> = stored
                        .iter()
                        .copied()
                        .filter(|b| child_sleep.contains(b))
                        .collect();
                    let old_stored = e.insert(new_stored);
                    if self.frontier_depth == Some(path.len()) {
                        self.frontier.push(FrontierItem {
                            state: next,
                            sleep: child_sleep,
                            prefix: full_trace(&path),
                        });
                        path.pop();
                        continue;
                    }
                    // Everything enabled but outside the old stored sleep
                    // was already expanded from this state on an earlier
                    // visit: treat it as done so the re-expansion's child
                    // sleeps account for that coverage.
                    let enabled = next.enabled(self.ctx);
                    let done: Vec<Action> = enabled
                        .iter()
                        .copied()
                        .filter(|x| !old_stored.contains(x))
                        .collect();
                    stack.push(Frame {
                        state: next,
                        pending: need,
                        done,
                        sleep: child_sleep,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Runs the checker: sequential when `jobs <= 1`, otherwise frontier
/// fan-out over `par_map`.
pub(crate) fn explore<P>(ctx: &Ctx<P>, root: State<P>, jobs: usize) -> Result<CheckStats, Violation>
where
    P: Protocol + Clone + fmt::Debug + Send + Sync,
{
    if jobs <= 1 {
        let mut ex = Explorer::new(ctx, false);
        ex.run(root, Vec::new(), &[], true)?;
        return Ok(ex.stats);
    }
    let mut ex = Explorer::new(ctx, true);
    ex.run(root, Vec::new(), &[], true)?;
    let mut stats = ex.stats;
    let frontier = std::mem::take(&mut ex.frontier);
    drop(ex);
    let results = qmx_workload::parallel::par_map(frontier, |item| {
        let mut worker = Explorer::new(ctx, false);
        let r = worker.run(item.state, item.sleep, &item.prefix, false);
        (worker.stats, r)
    });
    let mut violation = None;
    for (s, r) in results {
        stats.states += s.states;
        stats.transitions += s.transitions;
        stats.terminals += s.terminals;
        stats.naive_transitions += s.naive_transitions;
        stats.max_depth = stats.max_depth.max(s.max_depth);
        if violation.is_none() {
            if let Err(v) = r {
                violation = Some(v);
            }
        }
    }
    match violation {
        Some(v) => Err(v),
        None => Ok(stats),
    }
}
