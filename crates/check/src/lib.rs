//! # qmx-check
//!
//! A bounded exhaustive model checker for `qmx` mutual exclusion
//! protocols, built around a stateful DFS with **dynamic partial-order
//! reduction (sleep sets)** and a **fault alphabet** covering the paper's
//! §6 machinery.
//!
//! Randomized simulation samples one delivery order per seed; the checker
//! instead explores **every** reachable interleaving of the system model
//! of §2 of the paper — asynchronous message passing with per-link FIFO
//! channels — for a bounded workload (each site enters the CS a bounded
//! number of times, with instantaneous-but-interleavable CS occupancy).
//! With a [`FaultBudget`], the explored alphabet additionally includes
//! crashes, recoveries (answer-gated rejoin and incarnation fencing
//! included), message drops, timer firings, directed link cuts and
//! restorations (asymmetric partitions), and failure-detector verdicts
//! (suspect / restore / confirm), so §6 reclamation, rejoin, and
//! partition paths are verified exhaustively within scope — see the
//! (private) `state` module's docs for the precise fault semantics.
//!
//! At every state the checker verifies:
//!
//! * **Safety** — at most one *live* site is in its critical section
//!   ([`Violation::MutualExclusion`]);
//! * **No wedging** — a state with no enabled action must be fully served:
//!   no live site still wants the CS and no serviceable work remains
//!   ([`Violation::Deadlock`]). Sites the §6 model *expects* to stall
//!   (e.g. inaccessible ones) can be exempted via
//!   [`CheckOptions::stuck_exempt`];
//! * **Boundedness** — the state space stays under a configured cap
//!   (a proxy for unbounded message storms, [`Violation::StateLimit`]).
//!
//! On failure it returns the exact action trace reproducing the bug.
//! Counterexamples replay deterministically: [`replay`] re-executes a
//! trace against the checker semantics, and [`replay_in_sim`] scripts the
//! same schedule into `qmx-sim` as a differential check that checker and
//! simulator semantics agree on the violation.
//!
//! Sleep sets prune commuting transition orders but never prune states, so
//! a clean pass still visits every reachable state within scope: it is a
//! proof of Theorems 1 and 2 (and, within the fault budget, of the §6
//! claims) *for that scope*. [`CheckStats::reduction_ratio`] reports the
//! measured transition reduction versus naive exploration.
//!
//! ```
//! use qmx_check::{check, Workload};
//! use qmx_core::{Config, DelayOptimal, SiteId};
//!
//! // Two sites, shared quorum {0, 1}, one CS entry each: every
//! // interleaving is safe and deadlock-free.
//! let quorum = vec![SiteId(0), SiteId(1)];
//! let sites: Vec<DelayOptimal> = (0..2)
//!     .map(|i| DelayOptimal::new(SiteId(i), quorum.clone(), Config::default()))
//!     .collect();
//! let stats = check(sites, &Workload::uniform(2, 1), 100_000).expect("verified");
//! assert!(stats.states > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
mod replay;
mod state;

pub use replay::{replay, replay_in_sim, sim_replayable, ReplayOutcome, SimReplayOutcome};

use qmx_core::{Protocol, SiteId};
use std::fmt;

/// One transition of the explored system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The application at `site` issues its next CS request.
    Request(SiteId),
    /// The head message of the `from → to` channel is delivered.
    Deliver {
        /// Sending site.
        from: SiteId,
        /// Receiving site.
        to: SiteId,
    },
    /// The site currently in the CS leaves it.
    Exit(SiteId),
    /// The head message of the `from → to` channel is lost.
    Drop {
        /// Sending site.
        from: SiteId,
        /// Receiving site.
        to: SiteId,
    },
    /// The site crashes silently (its channels drain into the void).
    Crash(SiteId),
    /// A crashed site restarts pristine with a bumped incarnation and
    /// enters its answer-gated rejoin window.
    Recover(SiteId),
    /// `at`'s failure detector starts suspecting `of`.
    Suspect {
        /// The observing site.
        at: SiteId,
        /// The suspected site.
        of: SiteId,
    },
    /// `at` withdraws a false suspicion of the still-alive `of`.
    Restore {
        /// The observing site.
        at: SiteId,
        /// The falsely suspected site.
        of: SiteId,
    },
    /// `at`'s `fail_confirm` lease on `of` expires: the suspicion
    /// escalates to a confirmed failure (§6 reclamation).
    Confirm {
        /// The observing site.
        at: SiteId,
        /// The confirmed-failed site.
        of: SiteId,
    },
    /// `at` learns of `of`'s new incarnation and answers its rejoin.
    RejoinNotice {
        /// The observing site.
        at: SiteId,
        /// The rejoining site.
        of: SiteId,
    },
    /// `site` closes its rejoin window (every peer answered).
    RejoinDone(SiteId),
    /// `site`'s next armed timer fires (transport/detector stacks).
    Timer(SiteId),
    /// The application at `site` aborts its unfulfilled CS request (or
    /// parked want) via `Protocol::abort_cs` — the client-side timeout /
    /// give-up path. Budgeted by [`FaultBudget::aborts`]; enabled only
    /// while the site reports `Protocol::abortable`.
    Abort(SiteId),
    /// The directed link `from → to` is cut: messages already queued (and
    /// any sent while the cut holds) stay in the channel but cannot be
    /// delivered until the link is restored. Loss on a cut link is modeled
    /// by composing with [`Action::Drop`]; the cut itself is an embargo —
    /// the per-direction extension of the delivery gate.
    CutLink {
        /// Sending side of the severed direction.
        from: SiteId,
        /// Receiving side of the severed direction.
        to: SiteId,
    },
    /// The directed link `from → to` is restored: embargoed messages
    /// become deliverable again, in FIFO order.
    RestoreLink {
        /// Sending side of the healed direction.
        from: SiteId,
        /// Receiving side of the healed direction.
        to: SiteId,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Request(s) => write!(f, "request@{s}"),
            Action::Deliver { from, to } => write!(f, "deliver {from}->{to}"),
            Action::Exit(s) => write!(f, "exit@{s}"),
            Action::Drop { from, to } => write!(f, "drop {from}->{to}"),
            Action::Crash(s) => write!(f, "crash@{s}"),
            Action::Recover(s) => write!(f, "recover@{s}"),
            Action::Suspect { at, of } => write!(f, "suspect {at} of {of}"),
            Action::Restore { at, of } => write!(f, "restore {at} of {of}"),
            Action::Confirm { at, of } => write!(f, "confirm {at} of {of}"),
            Action::RejoinNotice { at, of } => write!(f, "rejoin-notice {at} of {of}"),
            Action::RejoinDone(s) => write!(f, "rejoin-done@{s}"),
            Action::Timer(s) => write!(f, "timer@{s}"),
            Action::Abort(s) => write!(f, "abort@{s}"),
            Action::CutLink { from, to } => write!(f, "cut-link {from}->{to}"),
            Action::RestoreLink { from, to } => write!(f, "restore-link {from}->{to}"),
        }
    }
}

/// A property violation, with the action trace that reaches it from the
/// initial state.
#[derive(Debug, Clone)]
pub enum Violation {
    /// Two sites were simultaneously in the CS.
    MutualExclusion {
        /// Actions from the initial state to the violation.
        trace: Vec<Action>,
        /// The two overlapping sites.
        sites: (SiteId, SiteId),
    },
    /// A state with no enabled action still has unserved demand.
    Deadlock {
        /// Actions from the initial state to the deadlock.
        trace: Vec<Action>,
        /// Sites that still want the CS.
        stuck: Vec<SiteId>,
    },
    /// Exploration exceeded the state cap.
    StateLimit {
        /// The cap that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MutualExclusion { trace, sites } => {
                writeln!(
                    f,
                    "mutual exclusion violated: {} and {} overlap after:",
                    sites.0, sites.1
                )?;
                for a in trace {
                    writeln!(f, "  {a}")?;
                }
                Ok(())
            }
            Violation::Deadlock { trace, stuck } => {
                writeln!(f, "deadlock: {stuck:?} still waiting after:")?;
                for a in trace {
                    writeln!(f, "  {a}")?;
                }
                Ok(())
            }
            Violation::StateLimit { limit } => {
                write!(f, "state space exceeded the cap of {limit} states")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// How many CS entries each site performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    pub(crate) rounds: Vec<u32>,
}

impl Workload {
    /// Every one of `n` sites enters `rounds` times.
    pub fn uniform(n: usize, rounds: u32) -> Self {
        Workload {
            rounds: vec![rounds; n],
        }
    }

    /// Per-site round counts.
    pub fn per_site(rounds: Vec<u32>) -> Self {
        Workload { rounds }
    }
}

/// Budget of fault transitions available to one exploration; all zeros
/// (the default) restricts the alphabet to the classic request / deliver /
/// exit model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultBudget {
    /// Silent site crashes.
    pub crashes: u32,
    /// Restarts of crashed sites (pristine state, bumped incarnation).
    pub recoveries: u32,
    /// Messages lost from a channel head.
    pub drops: u32,
    /// *False* suspicions (of live sites). True suspicions of crashed
    /// sites — and their confirmations — are always available once a crash
    /// occurred: an eventually-perfect detector eventually sees a real
    /// crash, and leaving them unbudgeted keeps budget exhaustion from
    /// manufacturing spurious deadlocks behind a dead permission holder.
    pub false_suspicions: u32,
    /// Timer firings (`Protocol::on_timer`); only relevant for stacks that
    /// arm timers (transport retransmission, detector heartbeats).
    pub timers: u32,
    /// Client aborts ([`Action::Abort`]): a site with an unfulfilled
    /// request (or a parked want) withdraws it through
    /// `Protocol::abort_cs`. The abort races every in-flight
    /// `Transfer`/`Inquire`/forwarded grant within scope, which is exactly
    /// where the abort×reclamation interleavings get pinned.
    pub aborts: u32,
    /// Directed link cuts ([`Action::CutLink`]): partition episodes at
    /// per-ordered-pair grain, so asymmetric splits (A hears B while B
    /// does not hear A) are in scope.
    pub cuts: u32,
    /// Directed link restorations ([`Action::RestoreLink`]). Keep
    /// `restores >= cuts` for a scope that is expected to verify: it
    /// guarantees every explored branch can heal fully, so embargoed
    /// messages always have a future and budget exhaustion cannot
    /// manufacture a wedge behind a permanently cut link.
    pub restores: u32,
    /// Whether detector-verdict transitions (suspect / restore / confirm /
    /// rejoin notices) are part of the alphabet at all. Disable to model a
    /// bare crash with *no* failure detection — useful to demonstrate that
    /// an unassisted protocol wedges behind a dead holder.
    pub detector: bool,
}

impl FaultBudget {
    /// No faults: the classic delivery-interleaving-only model.
    pub fn none() -> Self {
        FaultBudget::default()
    }

    /// `crashes` crashes and `recoveries` recoveries with detector
    /// verdicts enabled — the standard §6 scope.
    pub fn crash_recover(crashes: u32, recoveries: u32) -> Self {
        FaultBudget {
            crashes,
            recoveries,
            detector: true,
            ..FaultBudget::default()
        }
    }

    /// `cuts` directed link cuts and `restores` restorations with detector
    /// verdicts enabled — the crash-free partition scope. Suspicions of a
    /// site whose link here is cut are justified (the detector really does
    /// stop hearing it), so they never draw from `false_suspicions`.
    pub fn partitions(cuts: u32, restores: u32) -> Self {
        FaultBudget {
            cuts,
            restores,
            detector: true,
            ..FaultBudget::default()
        }
    }

    /// `aborts` client aborts on top of this budget; composable with any
    /// scope (`FaultBudget::crash_recover(1, 1).with_aborts(1)`).
    #[must_use]
    pub fn with_aborts(mut self, aborts: u32) -> Self {
        self.aborts = aborts;
        self
    }

    /// Whether any fault transition can ever fire under this budget.
    pub fn is_active(&self) -> bool {
        self.crashes > 0
            || self.recoveries > 0
            || self.drops > 0
            || self.false_suspicions > 0
            || self.timers > 0
            || self.aborts > 0
            || self.cuts > 0
            || self.restores > 0
            || self.detector
    }
}

/// Configuration for [`check_with`].
pub struct CheckOptions<P> {
    /// Distinct-state cap ([`Violation::StateLimit`] beyond it). With
    /// `jobs > 1` the cap applies per worker subtree.
    pub max_states: usize,
    /// Fault transitions available to the exploration.
    pub faults: FaultBudget,
    /// `<= 1`: sequential (exact dedup'd statistics). `> 1`: subtrees at a
    /// fixed depth fan out over `qmx_workload::parallel::par_map` (worker
    /// count from that module's process-wide setting); results stay
    /// deterministic but `states`/`transitions` become per-subtree sums.
    pub jobs: usize,
    /// Sleep-set partial-order reduction (on by default). Disabling it
    /// restores the naive full-DFS exploration — same states, same
    /// verdicts, orders of magnitude more transitions — which the test
    /// suite uses as a differential oracle.
    pub sleep_sets: bool,
    /// Sites for which stalling is *correct* are excluded from deadlock
    /// verdicts (and their pending rounds from the served-work check):
    /// e.g. `DelayOptimal::is_inaccessible` — §6 prescribes that a site
    /// with no live quorum left must block, not that it makes progress.
    pub stuck_exempt: Option<fn(&P) -> bool>,
}

impl<P> CheckOptions<P> {
    /// Defaults: sequential, sleep sets on, no faults, no exemptions.
    pub fn new(max_states: usize) -> Self {
        CheckOptions {
            max_states,
            faults: FaultBudget::none(),
            jobs: 1,
            sleep_sets: true,
            stuck_exempt: None,
        }
    }
}

impl<P> Clone for CheckOptions<P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P> Copy for CheckOptions<P> {}

/// Exploration statistics from a successful check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckStats {
    /// Distinct states visited (exact with `jobs = 1`; an upper bound with
    /// parallel fan-out, where workers dedup independently).
    pub states: usize,
    /// Transitions taken (including ones into already-visited states).
    pub transitions: usize,
    /// Terminal (fully served, quiescent) states found.
    pub terminals: usize,
    /// Length of the longest explored action sequence.
    pub max_depth: usize,
    /// Σ |enabled(s)| over all distinct states: the transition count a
    /// naive (reduction-free) exhaustive DFS with the same state dedup
    /// would execute.
    pub naive_transitions: u64,
}

impl CheckStats {
    /// Partial-order-reduction factor: naive transitions per explored
    /// transition (1.0 = no reduction).
    pub fn reduction_ratio(&self) -> f64 {
        if self.transitions == 0 {
            1.0
        } else {
            self.naive_transitions as f64 / self.transitions as f64
        }
    }
}

/// Exhaustively explores every interleaving of `sites` running `workload`
/// under the classic fault-free model (sequential, sleep sets on).
///
/// Returns exploration statistics, or the first [`Violation`] found with a
/// reproducing trace.
///
/// # Errors
///
/// [`Violation::MutualExclusion`] / [`Violation::Deadlock`] on a property
/// violation; [`Violation::StateLimit`] if more than `max_states` distinct
/// states are reachable.
///
/// # Panics
///
/// Panics if `workload` does not cover exactly `sites.len()` sites.
pub fn check<P>(
    sites: Vec<P>,
    workload: &Workload,
    max_states: usize,
) -> Result<CheckStats, Violation>
where
    P: Protocol + Clone + fmt::Debug + Send + Sync,
{
    check_with(sites, workload, &CheckOptions::new(max_states))
}

/// Exhaustively explores every interleaving of `sites` running `workload`
/// under `opts`: fault budget, parallel fan-out, reduction toggle, and
/// stuck-site exemptions.
///
/// # Errors
///
/// See [`check`].
///
/// # Panics
///
/// Panics if `workload` does not cover exactly `sites.len()` sites.
pub fn check_with<P>(
    sites: Vec<P>,
    workload: &Workload,
    opts: &CheckOptions<P>,
) -> Result<CheckStats, Violation>
where
    P: Protocol + Clone + fmt::Debug + Send + Sync,
{
    let (ctx, root, _) = state::build_root(sites, workload, opts);
    explore::explore(&ctx, root, opts.jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmx_core::{Config, DelayOptimal, Effects};

    fn duo() -> Vec<DelayOptimal> {
        let quorum = vec![SiteId(0), SiteId(1)];
        (0..2)
            .map(|i| DelayOptimal::new(SiteId(i), quorum.clone(), Config::default()))
            .collect()
    }

    #[test]
    fn two_sites_one_round_each_verifies() {
        let stats = check(duo(), &Workload::uniform(2, 1), 1_000_000).expect("verified");
        assert!(stats.states > 20);
        assert!(stats.terminals >= 1);
        assert!(stats.max_depth >= 8);
    }

    #[test]
    fn two_sites_two_rounds_each_verifies() {
        let stats = check(duo(), &Workload::uniform(2, 2), 5_000_000).expect("verified");
        assert!(stats.states > 100);
    }

    #[test]
    fn asymmetric_workload() {
        let stats = check(duo(), &Workload::per_site(vec![3, 1]), 5_000_000).expect("verified");
        assert!(stats.terminals >= 1);
    }

    #[test]
    fn state_limit_is_reported() {
        let err = check(duo(), &Workload::uniform(2, 2), 10).unwrap_err();
        assert!(matches!(err, Violation::StateLimit { limit: 10 }));
        assert!(err.to_string().contains("cap of 10"));
    }

    /// The sleep-set exploration must agree with the naive full DFS on
    /// every state-space invariant — states, terminals, depth, verdict —
    /// while taking strictly fewer transitions. This is the soundness
    /// differential for the reduction.
    #[test]
    fn sleep_sets_agree_with_naive_dfs() {
        let mut naive = CheckOptions::new(5_000_000);
        naive.sleep_sets = false;
        let full = check_with(duo(), &Workload::uniform(2, 2), &naive).expect("naive verifies");
        let reduced = check(duo(), &Workload::uniform(2, 2), 5_000_000).expect("dpor verifies");
        assert_eq!(
            full.states, reduced.states,
            "sleep sets must not lose states"
        );
        assert_eq!(full.terminals, reduced.terminals);
        // (max_depth is a property of the DFS tree, not of the state set,
        // so the two modes may legitimately differ on it.)
        assert_eq!(
            full.naive_transitions, reduced.naive_transitions,
            "identical state set implies identical enabled-sum"
        );
        assert_eq!(
            full.transitions as u64, full.naive_transitions,
            "naive mode explores every enabled transition of every state"
        );
        assert!(
            reduced.transitions < full.transitions,
            "reduction must prune commuting orders: {} vs {}",
            reduced.transitions,
            full.transitions
        );
        // The duo scope measures ≈1.47; the ratio grows with scope (the
        // 3-site round each exceeds 1.8 — see the fault-scope tests and
        // the bench trajectory) but this unit test stays small.
        assert!(reduced.reduction_ratio() > 1.2);
    }

    /// Parallel fan-out must find the same verdict with deterministic
    /// stats; state counts may exceed the sequential exact count (workers
    /// dedup independently) but never undershoot it.
    #[test]
    fn parallel_fan_out_agrees_with_sequential() {
        let seq = check(duo(), &Workload::uniform(2, 2), 5_000_000).expect("verified");
        let mut opts = CheckOptions::new(5_000_000);
        opts.jobs = 4;
        let par = check_with(duo(), &Workload::uniform(2, 2), &opts).expect("verified");
        assert!(par.states >= seq.states);
        assert!(par.max_depth > 0);
        assert!(par.terminals >= seq.terminals);
        // Determinism: running again yields byte-identical stats.
        let again = check_with(duo(), &Workload::uniform(2, 2), &opts).expect("verified");
        assert_eq!(par, again);
    }

    /// A deliberately broken "protocol" that enters the CS immediately on
    /// request without any coordination: the checker must produce a
    /// mutual-exclusion counterexample.
    #[derive(Debug, Clone)]
    struct Broken {
        site: SiteId,
        in_cs: bool,
    }

    #[derive(Debug, Clone)]
    enum NoMsg {}
    impl qmx_core::MsgMeta for NoMsg {
        fn kind(&self) -> qmx_core::MsgKind {
            qmx_core::MsgKind::Info
        }
    }

    impl Protocol for Broken {
        type Msg = NoMsg;
        fn site(&self) -> SiteId {
            self.site
        }
        fn request_cs(&mut self, fx: &mut Effects<NoMsg>) {
            self.in_cs = true;
            fx.enter_cs();
        }
        fn release_cs(&mut self, _fx: &mut Effects<NoMsg>) {
            self.in_cs = false;
        }
        fn handle(&mut self, _from: SiteId, msg: NoMsg, _fx: &mut Effects<NoMsg>) {
            match msg {}
        }
        fn in_cs(&self) -> bool {
            self.in_cs
        }
        fn wants_cs(&self) -> bool {
            false
        }
    }

    #[test]
    fn broken_protocol_yields_counterexample() {
        let sites = vec![
            Broken {
                site: SiteId(0),
                in_cs: false,
            },
            Broken {
                site: SiteId(1),
                in_cs: false,
            },
        ];
        let err = check(sites, &Workload::uniform(2, 1), 10_000).unwrap_err();
        match err {
            Violation::MutualExclusion { trace, .. } => {
                assert_eq!(trace.len(), 2, "two requests suffice");
                assert!(trace.iter().all(|a| matches!(a, Action::Request(_))));
            }
            other => panic!("expected mutual exclusion violation, got {other}"),
        }
    }

    /// A "protocol" that never grants: the checker must report deadlock.
    #[derive(Debug, Clone)]
    struct Stuck {
        site: SiteId,
        wants: bool,
    }

    impl Protocol for Stuck {
        type Msg = NoMsg;
        fn site(&self) -> SiteId {
            self.site
        }
        fn request_cs(&mut self, _fx: &mut Effects<NoMsg>) {
            self.wants = true;
        }
        fn release_cs(&mut self, _fx: &mut Effects<NoMsg>) {}
        fn handle(&mut self, _from: SiteId, msg: NoMsg, _fx: &mut Effects<NoMsg>) {
            match msg {}
        }
        fn in_cs(&self) -> bool {
            false
        }
        fn wants_cs(&self) -> bool {
            self.wants
        }
    }

    #[test]
    fn stuck_protocol_yields_deadlock() {
        let sites = vec![Stuck {
            site: SiteId(0),
            wants: false,
        }];
        let err = check(sites, &Workload::uniform(1, 1), 10_000).unwrap_err();
        assert!(matches!(err, Violation::Deadlock { .. }));
        assert!(err.to_string().contains("deadlock"));
    }

    /// Pinned dual-engine regression for the abort × forwarded-grant
    /// race. The guided walk parks S1 behind S0's CS occupancy, exits S0
    /// *without* draining — the delay-optimal holder has just forwarded
    /// the grant straight to S1, so it is in flight — and then aborts S1.
    /// Before `arb_relinquish` learned to park an early-returned grant
    /// this interleaving wedged the transfer chain; today it must resolve
    /// to a clean abort (the orphaned grant returns to its arbiter), and
    /// the checker replay and the scripted discrete-event simulator
    /// replay must both agree on the clean outcome.
    #[test]
    fn abort_races_forwarded_grant_both_engines_complete() {
        let workload = Workload::uniform(2, 1);
        let mut opts = CheckOptions::new(1_000_000);
        opts.faults = FaultBudget::none().with_aborts(1);
        let (ctx, mut st, _) = crate::state::build_root(duo(), &workload, &opts);
        let mut fx = Effects::new();
        let mut sent = Vec::new();
        let mut trace: Vec<Action> = Vec::new();
        macro_rules! step {
            ($a:expr) => {{
                let a = $a;
                assert!(
                    st.enabled(&ctx).contains(&a),
                    "guided action {a} not enabled"
                );
                st.apply(a, &ctx, &mut fx, &mut sent);
                sent.clear();
                trace.push(a);
            }};
        }
        macro_rules! drain {
            () => {
                while let Some(&d) = st
                    .enabled(&ctx)
                    .iter()
                    .find(|a| matches!(a, Action::Deliver { .. }))
                {
                    step!(d);
                }
            };
        }
        step!(Action::Request(SiteId(0)));
        drain!();
        assert!(st.sites[0].in_cs(), "S0 holds the CS after its drain");
        step!(Action::Request(SiteId(1)));
        drain!();
        assert!(st.sites[1].wants_cs(), "S1 is parked behind S0");
        step!(Action::Exit(SiteId(0)));
        // Deliberately no drain: the forwarded grant is still in flight
        // toward S1 when the abort fires.
        step!(Action::Abort(SiteId(1)));
        drain!();
        assert!(
            !st.sites[1].wants_cs() && !st.sites[1].in_cs(),
            "abort must withdraw cleanly, not enter"
        );
        assert!(
            st.enabled(&ctx).is_empty(),
            "guided walk must reach a terminal state"
        );
        assert_eq!(
            replay(duo(), &workload, &opts, &trace),
            ReplayOutcome::Completed,
            "checker replay: abort racing the forwarded grant is clean"
        );
        assert!(sim_replayable(&trace), "abort traces script into the sim");
        assert_eq!(
            replay_in_sim(duo(), &workload, &opts, &trace),
            SimReplayOutcome::Completed,
            "simulator replay: both engines agree the race is clean"
        );
    }

    #[test]
    fn action_display() {
        assert_eq!(Action::Request(SiteId(1)).to_string(), "request@S1");
        assert_eq!(
            Action::Deliver {
                from: SiteId(0),
                to: SiteId(2)
            }
            .to_string(),
            "deliver S0->S2"
        );
        assert_eq!(Action::Exit(SiteId(0)).to_string(), "exit@S0");
        assert_eq!(
            Action::Drop {
                from: SiteId(1),
                to: SiteId(0)
            }
            .to_string(),
            "drop S1->S0"
        );
        assert_eq!(Action::Crash(SiteId(2)).to_string(), "crash@S2");
        assert_eq!(Action::Recover(SiteId(2)).to_string(), "recover@S2");
        assert_eq!(Action::Abort(SiteId(2)).to_string(), "abort@S2");
        assert_eq!(
            Action::Suspect {
                at: SiteId(0),
                of: SiteId(2)
            }
            .to_string(),
            "suspect S0 of S2"
        );
        assert_eq!(Action::RejoinDone(SiteId(2)).to_string(), "rejoin-done@S2");
        assert_eq!(
            Action::CutLink {
                from: SiteId(0),
                to: SiteId(1)
            }
            .to_string(),
            "cut-link S0->S1"
        );
        assert_eq!(
            Action::RestoreLink {
                from: SiteId(1),
                to: SiteId(0)
            }
            .to_string(),
            "restore-link S1->S0"
        );
    }
}
