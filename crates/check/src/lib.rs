//! # qmx-check
//!
//! A bounded exhaustive model checker for `qmx` mutual exclusion
//! protocols.
//!
//! Randomized simulation samples one delivery order per seed; the checker
//! instead explores **every** reachable interleaving of the system model
//! of §2 of the paper — asynchronous message passing with per-link FIFO
//! channels — for a bounded workload (each site enters the CS a bounded
//! number of times, with instantaneous-but-interleavable CS occupancy).
//!
//! At every state the checker verifies:
//!
//! * **Safety** — at most one site is in its critical section
//!   ([`Violation::MutualExclusion`]);
//! * **No wedging** — a state with no enabled action must be fully served:
//!   no site still wants the CS and no work remains
//!   ([`Violation::Deadlock`]);
//! * **Boundedness** — the state space stays under a configured cap
//!   (a proxy for unbounded message storms, [`Violation::StateLimit`]).
//!
//! On failure it returns the exact action trace (request / deliver / exit
//! sequence) reproducing the bug — invaluable for protocols like this one
//! whose interesting bugs hide in cross-channel races that per-link FIFO
//! cannot order. Checking is exhaustive for the configured scope, so a
//! clean pass is a proof of Theorems 1 and 2 *within that scope*.
//!
//! ```
//! use qmx_check::{check, Workload};
//! use qmx_core::{Config, DelayOptimal, SiteId};
//!
//! // Two sites, shared quorum {0, 1}, one CS entry each: every
//! // interleaving is safe and deadlock-free.
//! let quorum = vec![SiteId(0), SiteId(1)];
//! let sites: Vec<DelayOptimal> = (0..2)
//!     .map(|i| DelayOptimal::new(SiteId(i), quorum.clone(), Config::default()))
//!     .collect();
//! let stats = check(sites, &Workload::uniform(2, 1), 100_000).expect("verified");
//! assert!(stats.states > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qmx_core::{Effects, Protocol, SiteId};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;

/// One transition of the explored system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The application at `site` issues its next CS request.
    Request(SiteId),
    /// The head message of the `from → to` channel is delivered.
    Deliver {
        /// Sending site.
        from: SiteId,
        /// Receiving site.
        to: SiteId,
    },
    /// The site currently in the CS leaves it.
    Exit(SiteId),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Request(s) => write!(f, "request@{s}"),
            Action::Deliver { from, to } => write!(f, "deliver {from}->{to}"),
            Action::Exit(s) => write!(f, "exit@{s}"),
        }
    }
}

/// A property violation, with the action trace that reaches it from the
/// initial state.
#[derive(Debug, Clone)]
pub enum Violation {
    /// Two sites were simultaneously in the CS.
    MutualExclusion {
        /// Actions from the initial state to the violation.
        trace: Vec<Action>,
        /// The two overlapping sites.
        sites: (SiteId, SiteId),
    },
    /// A state with no enabled action still has unserved demand.
    Deadlock {
        /// Actions from the initial state to the deadlock.
        trace: Vec<Action>,
        /// Sites that still want the CS.
        stuck: Vec<SiteId>,
    },
    /// Exploration exceeded the state cap.
    StateLimit {
        /// The cap that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MutualExclusion { trace, sites } => {
                writeln!(
                    f,
                    "mutual exclusion violated: {} and {} overlap after:",
                    sites.0, sites.1
                )?;
                for a in trace {
                    writeln!(f, "  {a}")?;
                }
                Ok(())
            }
            Violation::Deadlock { trace, stuck } => {
                writeln!(f, "deadlock: {stuck:?} still waiting after:")?;
                for a in trace {
                    writeln!(f, "  {a}")?;
                }
                Ok(())
            }
            Violation::StateLimit { limit } => {
                write!(f, "state space exceeded the cap of {limit} states")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// How many CS entries each site performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    rounds: Vec<u32>,
}

impl Workload {
    /// Every one of `n` sites enters `rounds` times.
    pub fn uniform(n: usize, rounds: u32) -> Self {
        Workload {
            rounds: vec![rounds; n],
        }
    }

    /// Per-site round counts.
    pub fn per_site(rounds: Vec<u32>) -> Self {
        Workload { rounds }
    }
}

/// Exploration statistics from a successful check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckStats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones into already-visited states).
    pub transitions: usize,
    /// Terminal (fully served, quiescent) states found.
    pub terminals: usize,
    /// Length of the longest explored action sequence.
    pub max_depth: usize,
}

struct State<P: Protocol> {
    sites: Vec<P>,
    channels: BTreeMap<(SiteId, SiteId), VecDeque<P::Msg>>,
    remaining: Vec<u32>,
}

impl<P: Protocol + Clone> Clone for State<P> {
    fn clone(&self) -> Self {
        State {
            sites: self.sites.clone(),
            channels: self.channels.clone(),
            remaining: self.remaining.clone(),
        }
    }
}

impl<P: Protocol + fmt::Debug> State<P>
where
    P::Msg: fmt::Debug,
{
    fn fingerprint(&self) -> String {
        // Debug output of every behaviour-relevant component. Channels with
        // no queued messages are dropped so "sent and delivered" equals
        // "never sent".
        let mut s = String::new();
        for site in &self.sites {
            s.push_str(&format!("{site:?};"));
        }
        for ((f, t), q) in &self.channels {
            if !q.is_empty() {
                s.push_str(&format!("{f}->{t}:{q:?};"));
            }
        }
        s.push_str(&format!("{:?}", self.remaining));
        s
    }
}

impl<P: Protocol> State<P> {
    fn in_cs_sites(&self) -> Vec<SiteId> {
        self.sites
            .iter()
            .filter(|s| s.in_cs())
            .map(|s| s.site())
            .collect()
    }

    fn enabled(&self) -> Vec<Action> {
        let mut acts = Vec::new();
        for (i, s) in self.sites.iter().enumerate() {
            if s.in_cs() {
                acts.push(Action::Exit(SiteId(i as u32)));
            } else if self.remaining[i] > 0 && !s.wants_cs() {
                acts.push(Action::Request(SiteId(i as u32)));
            }
        }
        for ((from, to), q) in &self.channels {
            if !q.is_empty() {
                acts.push(Action::Deliver {
                    from: *from,
                    to: *to,
                });
            }
        }
        acts
    }

    /// Applies `action`, pushing any sends onto the channels. Returns the
    /// sites that (newly) entered the CS.
    fn apply(&mut self, action: Action) {
        let mut fx = Effects::new();
        let actor = match action {
            Action::Request(s) => {
                self.remaining[s.index()] -= 1;
                self.sites[s.index()].request_cs(&mut fx);
                s
            }
            Action::Exit(s) => {
                self.sites[s.index()].release_cs(&mut fx);
                s
            }
            Action::Deliver { from, to } => {
                let msg = self
                    .channels
                    .get_mut(&(from, to))
                    .and_then(VecDeque::pop_front)
                    .expect("enabled deliver has a queued message");
                self.sites[to.index()].handle(from, msg, &mut fx);
                to
            }
        };
        let (sends, _entered) = fx.drain();
        for (to, msg) in sends {
            self.channels.entry((actor, to)).or_default().push_back(msg);
        }
    }
}

/// Exhaustively explores every interleaving of `sites` running `workload`.
///
/// Returns exploration statistics, or the first [`Violation`] found with a
/// reproducing trace.
///
/// # Errors
///
/// [`Violation::MutualExclusion`] / [`Violation::Deadlock`] on a property
/// violation; [`Violation::StateLimit`] if more than `max_states` distinct
/// states are reachable.
///
/// # Panics
///
/// Panics if `workload` does not cover exactly `sites.len()` sites.
pub fn check<P>(
    sites: Vec<P>,
    workload: &Workload,
    max_states: usize,
) -> Result<CheckStats, Violation>
where
    P: Protocol + Clone + fmt::Debug,
    P::Msg: Clone + fmt::Debug,
{
    assert_eq!(
        sites.len(),
        workload.rounds.len(),
        "workload must cover every site"
    );
    let mut init = State {
        sites,
        channels: BTreeMap::new(),
        remaining: workload.rounds.clone(),
    };
    // on_start (token placement etc.) happens before exploration.
    for i in 0..init.sites.len() {
        let mut fx = Effects::new();
        init.sites[i].on_start(&mut fx);
        let me = SiteId(i as u32);
        for (to, msg) in fx.take_sends() {
            init.channels.entry((me, to)).or_default().push_back(msg);
        }
    }

    let mut visited: HashSet<String> = HashSet::new();
    visited.insert(init.fingerprint());
    // DFS with explicit stack; each frame owns a state and its unexplored
    // actions. The current path of actions doubles as the counterexample
    // trace.
    struct Frame<P: Protocol> {
        state: State<P>,
        todo: Vec<Action>,
    }
    let init_todo = init.enabled();
    let mut stack: Vec<Frame<P>> = vec![Frame {
        state: init,
        todo: init_todo,
    }];
    let mut path: Vec<Action> = Vec::new();
    let mut stats = CheckStats {
        states: 1,
        transitions: 0,
        terminals: 0,
        max_depth: 0,
    };

    while let Some(frame) = stack.last_mut() {
        let Some(action) = frame.todo.pop() else {
            stack.pop();
            path.pop();
            continue;
        };
        let mut next = frame.state.clone();
        next.apply(action);
        path.push(action);
        stats.transitions += 1;
        stats.max_depth = stats.max_depth.max(path.len());

        // Safety.
        let occupants = next.in_cs_sites();
        if occupants.len() > 1 {
            return Err(Violation::MutualExclusion {
                trace: path.clone(),
                sites: (occupants[0], occupants[1]),
            });
        }

        let fp = next.fingerprint();
        if !visited.insert(fp) {
            path.pop();
            continue; // already explored
        }
        stats.states += 1;
        if stats.states > max_states {
            return Err(Violation::StateLimit { limit: max_states });
        }

        let todo = next.enabled();
        if todo.is_empty() {
            // Terminal: must be fully served.
            let stuck: Vec<SiteId> = next
                .sites
                .iter()
                .filter(|s| s.wants_cs() || s.in_cs())
                .map(|s| s.site())
                .collect();
            let undone = next.remaining.iter().any(|&r| r > 0);
            if !stuck.is_empty() || undone {
                return Err(Violation::Deadlock {
                    trace: path.clone(),
                    stuck,
                });
            }
            stats.terminals += 1;
            path.pop();
            continue;
        }
        stack.push(Frame { state: next, todo });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmx_core::{Config, DelayOptimal};

    fn duo() -> Vec<DelayOptimal> {
        let quorum = vec![SiteId(0), SiteId(1)];
        (0..2)
            .map(|i| DelayOptimal::new(SiteId(i), quorum.clone(), Config::default()))
            .collect()
    }

    #[test]
    fn two_sites_one_round_each_verifies() {
        let stats = check(duo(), &Workload::uniform(2, 1), 1_000_000).expect("verified");
        assert!(stats.states > 20);
        assert!(stats.terminals >= 1);
        assert!(stats.max_depth >= 8);
    }

    #[test]
    fn two_sites_two_rounds_each_verifies() {
        let stats = check(duo(), &Workload::uniform(2, 2), 5_000_000).expect("verified");
        assert!(stats.states > 100);
    }

    #[test]
    fn asymmetric_workload() {
        let stats = check(duo(), &Workload::per_site(vec![3, 1]), 5_000_000).expect("verified");
        assert!(stats.terminals >= 1);
    }

    #[test]
    fn state_limit_is_reported() {
        let err = check(duo(), &Workload::uniform(2, 2), 10).unwrap_err();
        assert!(matches!(err, Violation::StateLimit { limit: 10 }));
        assert!(err.to_string().contains("cap of 10"));
    }

    /// A deliberately broken "protocol" that enters the CS immediately on
    /// request without any coordination: the checker must produce a
    /// mutual-exclusion counterexample.
    #[derive(Debug, Clone)]
    struct Broken {
        site: SiteId,
        in_cs: bool,
    }

    #[derive(Debug, Clone)]
    enum NoMsg {}
    impl qmx_core::MsgMeta for NoMsg {
        fn kind(&self) -> qmx_core::MsgKind {
            qmx_core::MsgKind::Info
        }
    }

    impl Protocol for Broken {
        type Msg = NoMsg;
        fn site(&self) -> SiteId {
            self.site
        }
        fn request_cs(&mut self, fx: &mut Effects<NoMsg>) {
            self.in_cs = true;
            fx.enter_cs();
        }
        fn release_cs(&mut self, _fx: &mut Effects<NoMsg>) {
            self.in_cs = false;
        }
        fn handle(&mut self, _from: SiteId, msg: NoMsg, _fx: &mut Effects<NoMsg>) {
            match msg {}
        }
        fn in_cs(&self) -> bool {
            self.in_cs
        }
        fn wants_cs(&self) -> bool {
            false
        }
    }

    #[test]
    fn broken_protocol_yields_counterexample() {
        let sites = vec![
            Broken {
                site: SiteId(0),
                in_cs: false,
            },
            Broken {
                site: SiteId(1),
                in_cs: false,
            },
        ];
        let err = check(sites, &Workload::uniform(2, 1), 10_000).unwrap_err();
        match err {
            Violation::MutualExclusion { trace, .. } => {
                assert_eq!(trace.len(), 2, "two requests suffice");
                assert!(trace.iter().all(|a| matches!(a, Action::Request(_))));
            }
            other => panic!("expected mutual exclusion violation, got {other}"),
        }
    }

    /// A "protocol" that never grants: the checker must report deadlock.
    #[derive(Debug, Clone)]
    struct Stuck {
        site: SiteId,
        wants: bool,
    }

    impl Protocol for Stuck {
        type Msg = NoMsg;
        fn site(&self) -> SiteId {
            self.site
        }
        fn request_cs(&mut self, _fx: &mut Effects<NoMsg>) {
            self.wants = true;
        }
        fn release_cs(&mut self, _fx: &mut Effects<NoMsg>) {}
        fn handle(&mut self, _from: SiteId, msg: NoMsg, _fx: &mut Effects<NoMsg>) {
            match msg {}
        }
        fn in_cs(&self) -> bool {
            false
        }
        fn wants_cs(&self) -> bool {
            self.wants
        }
    }

    #[test]
    fn stuck_protocol_yields_deadlock() {
        let sites = vec![Stuck {
            site: SiteId(0),
            wants: false,
        }];
        let err = check(sites, &Workload::uniform(1, 1), 10_000).unwrap_err();
        assert!(matches!(err, Violation::Deadlock { .. }));
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn action_display() {
        assert_eq!(Action::Request(SiteId(1)).to_string(), "request@S1");
        assert_eq!(
            Action::Deliver {
                from: SiteId(0),
                to: SiteId(2)
            }
            .to_string(),
            "deliver S0->S2"
        );
        assert_eq!(Action::Exit(SiteId(0)).to_string(), "exit@S0");
    }
}
