//! The explored system model: protocol instances + FIFO channels +
//! fault meta-state, with the action alphabet's enabling rules, transition
//! semantics, canonical fingerprinting, and the independence relation the
//! sleep-set pruning relies on.
//!
//! # Fault model
//!
//! The checker drives a *bare* protocol stack and models the failure
//! detector's verdicts as explicit checker transitions instead of wrapping
//! sites in [`qmx_core::Detector`] (whose free-running timers would force
//! real time into every fingerprint and make the lease-timing assumption —
//! confirmed sites really are dead — unverifiable by exhaustion). Each
//! detector verdict invokes the corresponding [`Protocol`] hook:
//!
//! * `Crash(s)` — site dies silently: its channels are cleared, sends to it
//!   are dropped at send time (mirroring the simulator), and its protocol
//!   state is replaced by the pristine image so ghost state can't split
//!   fingerprints.
//! * `Recover(s)` — the pristine image boots with a bumped incarnation
//!   (`set_incarnation`, `on_start`, `on_recover`), entering the
//!   answer-gated rejoin window.
//! * `Suspect{at,of}` — `at`'s detector (unreliably) suspects `of`. True
//!   suspicions (of a crashed site) are always available — an
//!   eventually-perfect detector eventually notices a real crash — while
//!   *false* suspicions draw from [`FaultBudget::false_suspicions`].
//! * `Restore{at,of}` — a false suspicion is withdrawn; only enabled while
//!   `of` is alive in the incarnation that was suspected (a recovered site
//!   re-enters through the rejoin path instead).
//! * `Confirm{at,of}` — the `fail_confirm` lease expires and the suspicion
//!   escalates to `on_site_failure`. Only enabled when `of` really is
//!   crashed: this encodes the lease soundness assumption the detector's
//!   own unit tests pin, so the checker verifies the §6 reclamation logic
//!   under the assumption rather than "discovering" the documented
//!   detector-timing caveat at every scope.
//! * `RejoinNotice{at,of}` — `at` learns of `of`'s new incarnation
//!   (`on_peer_rejoined`), deduplicated per incarnation exactly like the
//!   detector's bookkeeping.
//! * `RejoinDone(s)` — `s` closes its rejoin window (`on_rejoin_complete`);
//!   gated on every peer having answered (`rejoin_pending() == false`), the
//!   answer-gated window of PR 2.
//! * `Drop{from,to}` / `Timer(s)` — lossy-link and timer transitions for
//!   stacks that implement them (budgeted; a bare protocol never arms
//!   timers, so `Timer` only fires for transport/detector wrappers).
//! * `Abort(s)` — the client at `s` gives up on its unfulfilled request
//!   (`abort_cs`), budgeted by [`FaultBudget::aborts`] and enabled only
//!   while `s` reports `abortable()` (waiting or parked, never inside the
//!   CS). The abort's `Abandon` withdrawal then races every in-flight
//!   `Transfer` / `Inquire` / forwarded grant the scope can produce.
//! * `CutLink{from,to}` / `RestoreLink{from,to}` — a directed partition
//!   episode at per-ordered-pair grain (asymmetric cuts included). A cut
//!   is an **embargo**, the per-direction extension of the delivery gate:
//!   messages already queued on the link — and any sent while it is cut —
//!   stay in the channel in FIFO order but `Deliver` is withheld until
//!   `RestoreLink` fires. Loss is a separate concern, modeled by composing
//!   with the budgeted `Drop`; this keeps the cut a pure *scheduling*
//!   constraint, which is what lets cut-bearing traces replay exactly in
//!   the simulator through the delay script alone. While `of → at` is
//!   cut, `Suspect{at,of}` is *justified* — `at` really does stop hearing
//!   `of` — and while `at → of` is cut it is justified too (the real
//!   detector's reciprocal-suspicion path: `of` keeps echoing that it
//!   cannot hear `at`), so neither direction draws from the
//!   false-suspicion budget. The matching `Restore{at,of}` verdict is
//!   withheld until the `of → at` link heals (withdrawal rides a message
//!   from the site — a clean beat or a cleared echo — which a cut inbound
//!   link cannot carry).
//!
//! # Delivery vs. detector-view staleness
//!
//! Because the detector's verdicts are checker transitions rather than part
//! of the message flow, a naive model would let a protocol message from a
//! live sender arrive at a receiver that still suspects it — an ordering
//! the composed `Detector<P>` stack can never produce: `heard_from` runs
//! before the inner `handle` of every message (so receiving anything from a
//! falsely-suspected live sender withdraws the suspicion first), and FIFO
//! channels put a recovered site's `Rejoin` announcement ahead of every
//! post-recovery send (so the rejoin notice is always processed before any
//! new-incarnation app message). `enabled` therefore withholds
//! `Deliver{from,to}` while `to`'s view of a *live* `from` is stale —
//! suspected, confirmed, or an unseen incarnation — until the matching
//! `Restore` / `RejoinNotice` fires (both are unbudgeted in exactly those
//! states, so the gate never manufactures a terminal state).
//!
//! Pre-crash in-flight traffic bypasses the gate: the network doesn't
//! consult verdicts, so messages from a crashed sender — and stragglers
//! tagged with an older incarnation of a since-recovered sender — stay
//! deliverable. Per-link FIFO pins their order against the rejoin
//! handshake: the recovered site's `Rejoin` announcement queues *behind*
//! its old incarnation's leftovers on each link, so `RejoinNotice{at,of}`
//! is additionally gated on the `of -> at` channel holding no
//! old-incarnation messages. (Delivering a stale grant *before* the
//! notice is exactly what lets the receiver report it in its `Claim`
//! answer; the reverse order — which an earlier model allowed — leaks a
//! permission past the handshake and manufactures a mutual-exclusion
//! violation the real FIFO stack cannot produce.)
//!
//! One real behaviour is deliberately *not* modelled (a sound
//! under-approximation for safety at these scopes): delivering such a
//! pre-crash message would momentarily *restore* a merely-suspected
//! sender in the real detector (`heard_from` flaps the suspicion off, the
//! next timeout re-arms it). The checker delivers the message without the
//! flap.

use crate::{Action, CheckOptions, FaultBudget, Workload};
use qmx_core::{Effects, Protocol, SiteId};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::{self, Write as _};

/// Immutable per-exploration context: scope, options, and the pristine
/// protocol images recovered sites boot from.
pub(crate) struct Ctx<P> {
    pub(crate) n: usize,
    pub(crate) pristine: Vec<P>,
    pub(crate) opts: CheckOptions<P>,
    /// Whether any fault transition can ever fire (when false, the fault
    /// meta-state is constant and is excluded from fingerprints).
    pub(crate) fault_active: bool,
}

impl<P> Ctx<P> {
    pub(crate) fn exempt(&self, p: &P) -> bool {
        self.opts.stuck_exempt.is_some_and(|f| f(p))
    }
}

/// Checker-side fault bookkeeping; part of the explored state (and of the
/// fingerprint whenever the fault model is active).
#[derive(Debug, Clone)]
pub(crate) struct Meta {
    pub(crate) crashed: Vec<bool>,
    pub(crate) incarnation: Vec<u64>,
    /// Sites inside their answer-gated rejoin window.
    pub(crate) rejoining: Vec<bool>,
    /// Per-site local clock, advanced only by `Timer` transitions.
    pub(crate) local_now: Vec<u64>,
    /// `suspected[at][of]` = incarnation of `of` that `at` suspects.
    pub(crate) suspected: Vec<Vec<Option<u64>>>,
    /// `confirmed[at][of]`: `at` escalated the suspicion to a failure.
    pub(crate) confirmed: Vec<Vec<bool>>,
    /// `rejoin_seen[at][of]` = latest incarnation of `of` whose rejoin `at`
    /// has processed (the detector's per-peer dedup).
    pub(crate) rejoin_seen: Vec<Vec<u64>>,
    /// `link_cut[from][to]`: the directed link is under a partition
    /// embargo — its queued messages are undeliverable until restored.
    pub(crate) link_cut: Vec<Vec<bool>>,
    /// Remaining fault budget.
    pub(crate) budget: FaultBudget,
}

impl Meta {
    pub(crate) fn new(n: usize, budget: FaultBudget) -> Self {
        Meta {
            crashed: vec![false; n],
            incarnation: vec![0; n],
            rejoining: vec![false; n],
            local_now: vec![0; n],
            suspected: vec![vec![None; n]; n],
            confirmed: vec![vec![false; n]; n],
            rejoin_seen: vec![vec![0; n]; n],
            link_cut: vec![vec![false; n]; n],
            budget,
        }
    }
}

/// Per-link FIFO queues; each entry is tagged with the sender's
/// incarnation at send time, so pre-crash stragglers from a
/// since-recovered sender are distinguishable from its post-recovery
/// sends (the delivery gate and the `RejoinNotice` FIFO gate both read
/// the tag).
pub(crate) type Channels<M> = BTreeMap<(SiteId, SiteId), VecDeque<(u64, M)>>;

pub(crate) struct State<P: Protocol> {
    pub(crate) sites: Vec<P>,
    pub(crate) channels: Channels<P::Msg>,
    pub(crate) remaining: Vec<u32>,
    pub(crate) meta: Meta,
}

impl<P: Protocol + Clone> Clone for State<P> {
    fn clone(&self) -> Self {
        State {
            sites: self.sites.clone(),
            channels: self.channels.clone(),
            remaining: self.remaining.clone(),
            meta: self.meta.clone(),
        }
    }
}

/// 128-bit FNV-1a over the `Debug` rendering of the state, streamed through
/// `fmt::Write` so no fingerprint string is ever materialized. 128 bits keep
/// the accidental-collision probability negligible (< 1e-18 at 10^9 states),
/// which matters because a collision would silently prune a reachable state.
struct Fnv128(u128);

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }
    fn finish(&self) -> u128 {
        self.0
    }
}

impl fmt::Write for Fnv128 {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for b in s.bytes() {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
        Ok(())
    }
}

impl<P: Protocol + fmt::Debug> State<P>
where
    P::Msg: fmt::Debug,
{
    /// Canonical state hash: the `Debug` output of every behaviour-relevant
    /// component (protocol instances, non-empty channels, remaining rounds,
    /// fault meta-state), folded into 128-bit FNV-1a. Channels with no
    /// queued messages are skipped so "sent and delivered" equals "never
    /// sent".
    pub(crate) fn fingerprint(&self, ctx: &Ctx<P>) -> u128 {
        let mut h = Fnv128::new();
        for site in &self.sites {
            let _ = write!(h, "{site:?};");
        }
        for ((f, t), q) in &self.channels {
            if !q.is_empty() {
                let _ = write!(h, "{f}->{t}:{q:?};");
            }
        }
        let _ = write!(h, "{:?}", self.remaining);
        if ctx.fault_active {
            let m = &self.meta;
            let _ = write!(
                h,
                ";{:?}{:?}{:?}{:?}{:?}{:?}{:?}{:?}{:?}",
                m.crashed,
                m.incarnation,
                m.rejoining,
                m.local_now,
                m.suspected,
                m.confirmed,
                m.rejoin_seen,
                m.link_cut,
                m.budget
            );
        }
        h.finish()
    }
}

impl<P: Protocol + Clone> State<P> {
    /// Live sites currently inside the CS (a crashed site's CS dies with
    /// it, exactly like the simulator's safety monitor).
    pub(crate) fn in_cs_sites(&self) -> Vec<SiteId> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(i, s)| !self.meta.crashed[*i] && s.in_cs())
            .map(|(_, s)| s.site())
            .collect()
    }

    /// Live sites still wanting (or holding) the CS, minus the exempted
    /// ones (e.g. §6-inaccessible sites, which are *supposed* to stall).
    pub(crate) fn stuck_sites(&self, ctx: &Ctx<P>) -> Vec<SiteId> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                !self.meta.crashed[*i] && (s.wants_cs() || s.in_cs()) && !ctx.exempt(s)
            })
            .map(|(_, s)| s.site())
            .collect()
    }

    /// Whether a live, non-exempt site still has unserved rounds.
    pub(crate) fn undone(&self, ctx: &Ctx<P>) -> bool {
        self.sites
            .iter()
            .enumerate()
            .any(|(i, s)| !self.meta.crashed[i] && self.remaining[i] > 0 && !ctx.exempt(s))
    }

    /// Every action enabled in this state, in a fixed deterministic order.
    pub(crate) fn enabled(&self, ctx: &Ctx<P>) -> Vec<Action> {
        let m = &self.meta;
        let mut acts = Vec::new();
        for (i, s) in self.sites.iter().enumerate() {
            if m.crashed[i] {
                continue;
            }
            let sid = SiteId(i as u32);
            if s.in_cs() {
                acts.push(Action::Exit(sid));
            } else if self.remaining[i] > 0 && !s.wants_cs() && !ctx.exempt(s) {
                acts.push(Action::Request(sid));
            }
            if m.rejoining[i] && !s.rejoin_pending() {
                acts.push(Action::RejoinDone(sid));
            }
            if m.budget.timers > 0 && s.next_timer().is_some() {
                acts.push(Action::Timer(sid));
            }
            if m.budget.aborts > 0 && s.abortable() {
                acts.push(Action::Abort(sid));
            }
        }
        for ((from, to), q) in &self.channels {
            if q.is_empty() {
                continue;
            }
            // FIFO-faithfulness gate: the real stack runs the detector's
            // `heard_from` before the inner `handle` of *every* message, and
            // FIFO channels put a recovered site's `Rejoin` announcement
            // ahead of any post-recovery protocol send. So no receiver ever
            // processes an app message while its detector-view of a live
            // sender is stale: hearing the sender withdraws the suspicion
            // (or delivers the rejoin notice) first. The checker splits
            // those detector updates into explicit `Restore` /
            // `RejoinNotice` transitions, so delivery from a live sender is
            // withheld until the matching verdict has fired — otherwise the
            // checker explores message orderings the composed stack cannot
            // produce. Two classes bypass the gate because the network
            // doesn't care about verdicts: messages from a *crashed* sender,
            // and pre-crash stragglers from a *since-recovered* sender
            // (tagged with an older incarnation). The latter sit *ahead* of
            // the sender's `Rejoin` announcement in per-link FIFO, so the
            // real stack always processes them before the rejoin notice —
            // withholding them until after the notice would explore an
            // impossible ordering in which the grant they may carry escapes
            // the rejoin handshake's `Claim` accounting. (The real stack's
            // restore-flap on such a message is a documented
            // under-approximation; see the module docs.)
            let (f, t) = (from.index(), to.index());
            let straggler = q.front().is_some_and(|(inc, _)| *inc < m.incarnation[f]);
            let stale_view = !m.crashed[f]
                && !straggler
                && (m.suspected[t][f].is_some()
                    || m.confirmed[t][f]
                    || m.incarnation[f] > m.rejoin_seen[t][f]);
            // Per-direction partition embargo: a cut link holds its queue
            // (FIFO) but delivers nothing until `RestoreLink` heals it.
            if !stale_view && !m.link_cut[f][t] {
                acts.push(Action::Deliver {
                    from: *from,
                    to: *to,
                });
            }
            if m.budget.drops > 0 {
                acts.push(Action::Drop {
                    from: *from,
                    to: *to,
                });
            }
        }
        if m.budget.crashes > 0 {
            for i in 0..ctx.n {
                if !m.crashed[i] {
                    acts.push(Action::Crash(SiteId(i as u32)));
                }
            }
        }
        if m.budget.recoveries > 0 {
            for i in 0..ctx.n {
                if m.crashed[i] {
                    acts.push(Action::Recover(SiteId(i as u32)));
                }
            }
        }
        if m.budget.cuts > 0 {
            // Cutting a link to or from a crashed site is unobservable
            // (sends to it are dropped at source and it sends nothing), so
            // those pairs are excluded to keep the scope tight.
            for f in 0..ctx.n {
                for t in 0..ctx.n {
                    if f != t && !m.link_cut[f][t] && !m.crashed[f] && !m.crashed[t] {
                        acts.push(Action::CutLink {
                            from: SiteId(f as u32),
                            to: SiteId(t as u32),
                        });
                    }
                }
            }
        }
        if m.budget.restores > 0 {
            for f in 0..ctx.n {
                for t in 0..ctx.n {
                    if m.link_cut[f][t] {
                        acts.push(Action::RestoreLink {
                            from: SiteId(f as u32),
                            to: SiteId(t as u32),
                        });
                    }
                }
            }
        }
        if ctx.opts.faults.detector {
            for at in 0..ctx.n {
                if m.crashed[at] {
                    continue;
                }
                for of in 0..ctx.n {
                    if of == at {
                        continue;
                    }
                    let (a, o) = (SiteId(at as u32), SiteId(of as u32));
                    match m.suspected[at][of] {
                        None => {
                            // Suspecting a crashed site — or one with a cut
                            // link in either direction — is *justified*:
                            // silence (`of -> at` cut: the detector stops
                            // hearing it) or a persistent suspicion echo
                            // (`at -> of` cut: the peer keeps reporting it
                            // cannot hear us, so the reciprocal-suspicion
                            // path fires). Neither draws from the
                            // false-suspicion budget.
                            if m.crashed[of]
                                || m.link_cut[of][at]
                                || m.link_cut[at][of]
                                || m.budget.false_suspicions > 0
                            {
                                acts.push(Action::Suspect { at: a, of: o });
                            }
                        }
                        Some(inc) => {
                            if m.crashed[of] {
                                if !m.confirmed[at][of] {
                                    acts.push(Action::Confirm { at: a, of: o });
                                }
                            } else if inc == m.incarnation[of]
                                && !m.link_cut[of][at]
                                && !m.link_cut[at][of]
                            {
                                // A suspicion is withdrawn only when its
                                // evidence can clear, which no cut on the
                                // pair can allow: a silence suspicion
                                // withdraws by hearing the site again
                                // (needs `of -> at`), a reciprocal one
                                // when the peer's suspicion echo stops
                                // (needs `at -> of` — while our outbound
                                // link is down the peer keeps suspecting
                                // us and every beat re-echoes it). The
                                // checker does not track which kind fired,
                                // so `Restore` waits for both directions.
                                // This also bounds the state graph: a
                                // withdrawal can no longer alternate with
                                // a still-justified re-suspicion, which
                                // would re-issue the suspect's parked
                                // request with fresh clocks forever.
                                acts.push(Action::Restore { at: a, of: o });
                            }
                        }
                    }
                    if !m.crashed[of]
                        && m.incarnation[of] > m.rejoin_seen[at][of]
                        && !m.link_cut[of][at]
                    {
                        // (The link-cut gate mirrors delivery: the rejoin
                        // announcement rides the same severed channel.)
                        // Per-link FIFO: the rejoin announcement queues
                        // *behind* whatever the old incarnation left in
                        // flight on the (of -> at) link, so the notice
                        // cannot be processed while pre-recovery stragglers
                        // are still queued. (Stragglers are unconditionally
                        // deliverable, so this gate never wedges.)
                        let stragglers = self
                            .channels
                            .get(&(o, a))
                            .and_then(VecDeque::front)
                            .is_some_and(|(inc, _)| *inc < m.incarnation[of]);
                        if !stragglers {
                            acts.push(Action::RejoinNotice { at: a, of: o });
                        }
                    }
                }
            }
        }
        acts
    }

    /// Routes the sends queued in `fx` onto the channels, dropping sends to
    /// crashed sites at send time (the simulator does the same before
    /// sampling a delay, which keeps trace replays aligned). Each queued
    /// send's channel is appended to `sent` for the replay builder.
    fn route(&mut self, actor: SiteId, fx: &mut Effects<P::Msg>, sent: &mut Vec<(SiteId, SiteId)>) {
        // CS entries are tracked via `Protocol::in_cs`, not the effects
        // buffer; clear them so the reused scratch never accumulates.
        fx.clear_entered();
        let inc = self.meta.incarnation[actor.index()];
        for (to, msg) in fx.drain_sends() {
            if self.meta.crashed[to.index()] {
                continue;
            }
            self.channels
                .entry((actor, to))
                .or_default()
                .push_back((inc, msg));
            sent.push((actor, to));
        }
    }

    fn set_now(&mut self, site: usize) {
        let now = self.meta.local_now[site];
        self.sites[site].set_now(now);
    }

    /// Applies an enabled `action`. `fx` is a drained scratch buffer;
    /// `sent` records the channel of every send the action queued (in emit
    /// order — the replay builder needs it, the explorer ignores it).
    pub(crate) fn apply(
        &mut self,
        action: Action,
        ctx: &Ctx<P>,
        fx: &mut Effects<P::Msg>,
        sent: &mut Vec<(SiteId, SiteId)>,
    ) {
        debug_assert!(fx.sends().is_empty(), "scratch effects must be drained");
        match action {
            Action::Request(s) => {
                let i = s.index();
                self.remaining[i] -= 1;
                self.set_now(i);
                self.sites[i].request_cs(fx);
                self.route(s, fx, sent);
            }
            Action::Exit(s) => {
                let i = s.index();
                self.set_now(i);
                self.sites[i].release_cs(fx);
                self.route(s, fx, sent);
            }
            Action::Deliver { from, to } => {
                let (_, msg) = self
                    .channels
                    .get_mut(&(from, to))
                    .and_then(VecDeque::pop_front)
                    .expect("enabled deliver has a queued message");
                let i = to.index();
                self.set_now(i);
                self.sites[i].handle(from, msg, fx);
                self.route(to, fx, sent);
            }
            Action::Drop { from, to } => {
                self.channels
                    .get_mut(&(from, to))
                    .and_then(VecDeque::pop_front)
                    .expect("enabled drop has a queued message");
                self.meta.budget.drops -= 1;
            }
            Action::Crash(s) => {
                let i = s.index();
                self.meta.budget.crashes -= 1;
                self.meta.crashed[i] = true;
                self.meta.rejoining[i] = false;
                // The dead incarnation's detector view dies with it; resetting
                // it (and swapping the pristine image in now) canonicalises
                // the fingerprint so states differing only in ghost state
                // dedup together. `Recover` boots from this image.
                for of in 0..ctx.n {
                    self.meta.suspected[i][of] = None;
                    self.meta.confirmed[i][of] = false;
                    self.meta.rejoin_seen[i][of] = 0;
                }
                self.sites[i] = ctx.pristine[i].clone();
                for ((_, to), q) in self.channels.iter_mut() {
                    if *to == s {
                        q.clear();
                    }
                }
            }
            Action::Recover(s) => {
                let i = s.index();
                self.meta.budget.recoveries -= 1;
                self.meta.crashed[i] = false;
                self.meta.incarnation[i] += 1;
                self.meta.rejoining[i] = true;
                let inc = self.meta.incarnation[i];
                // Same boot sequence as `Simulator`'s Recover event: the
                // pristine image (swapped in at crash time) learns its
                // incarnation, starts, and opens the rejoin window.
                self.set_now(i);
                self.sites[i].set_incarnation(inc);
                self.sites[i].on_start(fx);
                self.route(s, fx, sent);
                self.sites[i].on_recover(fx);
                self.route(s, fx, sent);
            }
            Action::Suspect { at, of } => {
                let (a, o) = (at.index(), of.index());
                // Justified suspicions — of a crashed site, or of one with
                // a cut link in either direction (silence, or the
                // reciprocal persistent-echo path) — are free; only truly
                // baseless ones draw from the budget.
                if !self.meta.crashed[o] && !self.meta.link_cut[o][a] && !self.meta.link_cut[a][o] {
                    self.meta.budget.false_suspicions -= 1;
                }
                self.meta.suspected[a][o] = Some(self.meta.incarnation[o]);
                self.set_now(a);
                self.sites[a].on_site_suspected(of, fx);
                self.route(at, fx, sent);
            }
            Action::Restore { at, of } => {
                let (a, o) = (at.index(), of.index());
                self.meta.suspected[a][o] = None;
                self.set_now(a);
                self.sites[a].on_site_restored(of, fx);
                self.route(at, fx, sent);
            }
            Action::Confirm { at, of } => {
                let (a, o) = (at.index(), of.index());
                self.meta.confirmed[a][o] = true;
                self.set_now(a);
                self.sites[a].on_site_failure(of, fx);
                self.route(at, fx, sent);
            }
            Action::RejoinNotice { at, of } => {
                let (a, o) = (at.index(), of.index());
                let inc = self.meta.incarnation[o];
                self.meta.rejoin_seen[a][o] = inc;
                self.meta.suspected[a][o] = None;
                self.meta.confirmed[a][o] = false;
                self.set_now(a);
                self.sites[a].on_peer_rejoined(of, inc, fx);
                self.route(at, fx, sent);
            }
            Action::RejoinDone(s) => {
                let i = s.index();
                self.meta.rejoining[i] = false;
                self.set_now(i);
                self.sites[i].on_rejoin_complete(fx);
                self.route(s, fx, sent);
            }
            Action::CutLink { from, to } => {
                // Pure meta transition: no protocol hook runs and the
                // channel keeps its queue — the cut only embargoes
                // delivery (and justifies suspicions) until restored.
                self.meta.budget.cuts -= 1;
                self.meta.link_cut[from.index()][to.index()] = true;
            }
            Action::RestoreLink { from, to } => {
                self.meta.budget.restores -= 1;
                self.meta.link_cut[from.index()][to.index()] = false;
            }
            Action::Abort(s) => {
                let i = s.index();
                self.meta.budget.aborts -= 1;
                self.set_now(i);
                let aborted = self.sites[i].abort_cs(fx);
                debug_assert!(aborted, "enabled abort must withdraw something");
                self.route(s, fx, sent);
            }
            Action::Timer(s) => {
                let i = s.index();
                self.meta.budget.timers -= 1;
                let due = self.sites[i]
                    .next_timer()
                    .expect("enabled timer has a deadline");
                let now = self.meta.local_now[i].max(due);
                self.meta.local_now[i] = now;
                self.sites[i].set_now(now);
                self.sites[i].on_timer(now, fx);
                self.route(s, fx, sent);
            }
        }
    }
}

/// Builds the initial state: peer universes wired, pristine images captured
/// (pre-`on_start`, exactly like `Simulator::schedule_recovery` used from
/// tests), then `on_start` runs with its sends queued for delivery. The
/// third return is the log of channels those startup sends were queued on
/// (in emit order) — the replay builder's time-zero sends.
pub(crate) fn build_root<P>(
    mut sites: Vec<P>,
    workload: &Workload,
    opts: &CheckOptions<P>,
) -> (Ctx<P>, State<P>, Vec<(SiteId, SiteId)>)
where
    P: Protocol + Clone + fmt::Debug,
{
    assert_eq!(
        sites.len(),
        workload.rounds.len(),
        "workload must cover every site"
    );
    let n = sites.len();
    let universe: Vec<SiteId> = (0..n).map(|i| SiteId(i as u32)).collect();
    for s in &mut sites {
        s.set_peer_universe(&universe);
    }
    let pristine = sites.clone();
    let mut root = State {
        sites,
        channels: BTreeMap::new(),
        remaining: workload.rounds.clone(),
        meta: Meta::new(n, opts.faults),
    };
    let mut fx = Effects::new();
    let mut sent = Vec::new();
    for i in 0..n {
        root.sites[i].on_start(&mut fx);
        root.route(SiteId(i as u32), &mut fx, &mut sent);
    }
    let ctx = Ctx {
        n,
        pristine,
        opts: *opts,
        fault_active: opts.faults.is_active(),
    };
    (ctx, root, sent)
}

/// The site whose local state machine an action steps (delivery and drop
/// belong to the receiving end of the channel; detector verdicts to the
/// observing site). `CutLink`/`RestoreLink` step no machine, but every
/// action whose enabledness they flip — `Deliver{from,to}`,
/// `Suspect{at: to, of: from}`, `Restore{at: to, of: from}` — is owned by
/// the receiving end, so assigning them `to` routes all those conflicts
/// through the same-owner dependency rule.
pub(crate) fn owner(a: Action) -> SiteId {
    match a {
        Action::Request(s)
        | Action::Exit(s)
        | Action::Crash(s)
        | Action::Recover(s)
        | Action::RejoinDone(s)
        | Action::Timer(s)
        | Action::Abort(s) => s,
        Action::Deliver { to, .. }
        | Action::Drop { to, .. }
        | Action::CutLink { to, .. }
        | Action::RestoreLink { to, .. } => to,
        Action::Suspect { at, .. }
        | Action::Restore { at, .. }
        | Action::Confirm { at, .. }
        | Action::RejoinNotice { at, .. } => at,
    }
}

fn protocol_class(a: Action) -> bool {
    matches!(
        a,
        Action::Request(_) | Action::Deliver { .. } | Action::Exit(_)
    )
}

/// A sound (conservative) independence relation: two actions are
/// independent iff from any state where both are enabled, executing them in
/// either order reaches the same state, neither disables the other, and
/// neither changes what the other does.
///
/// * Same owner ⇒ dependent (both step the same state machine, and
///   delivery from / sends into that site's channels interleave with it).
/// * Distinct owners, both in the protocol class (request / deliver /
///   exit) ⇒ independent: the only shared structure is a channel, where one
///   side appends to the tail and the other pops the head — the classic
///   FIFO commuting diamond this reduction exists to prune.
/// * `Recover` is dependent with *everything*: it flips its site from
///   "sends to me are dropped" to "sends to me are queued", so ordering
///   against any potential sender is observable.
/// * Any other pair involving a fault-class action (crash, drop, detector
///   verdicts, timers, link cuts/restores) is dependent if both are
///   fault-class — they couple through shared budgets and through liveness
///   gates (a crash enables `Confirm` and disables `Restore` for every
///   observer) — while a fault-class action and a *protocol* action with
///   distinct owners commute: the verdict only touches the observer's
///   state machine and budget, neither of which a remote protocol step
///   reads. `CutLink`/`RestoreLink` in particular touch only the link-cut
///   matrix; the protocol actions they conflict with (delivery on the
///   embargoed channel) share their owner — the receiving site — so the
///   same-owner rule already orders them, and a remote site's protocol
///   step neither reads the matrix nor changes it (sends *queue* on a cut
///   link rather than being dropped, so send-then-cut and cut-then-send
///   reach the same state).
pub(crate) fn independent(a: Action, b: Action) -> bool {
    if owner(a) == owner(b) {
        return false;
    }
    if matches!(a, Action::Recover(_)) || matches!(b, Action::Recover(_)) {
        return false;
    }
    protocol_class(a) || protocol_class(b)
}
