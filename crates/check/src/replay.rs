//! Counterexample replay: re-execute a checker trace against the checker
//! semantics ([`replay`]), or script its exact schedule into the
//! discrete-event simulator ([`replay_in_sim`]) as a differential check
//! that checker and simulator semantics agree on the violation.
//!
//! # Simulator replay
//!
//! The simulator has no notion of "actions" — it delivers messages after
//! sampled delays and exits the CS after sampled hold times. Replay
//! therefore re-walks the trace under checker semantics, assigns the k-th
//! action the virtual time `(k + 1) · 1000`, and derives from the walk:
//!
//! * a **delay script**: one entry per queued send, in global send order
//!   (the simulator samples delays in exactly that order) — `t_deliver −
//!   t_send` for sends the trace delivers, and an over-horizon sentinel
//!   for sends it drops or leaves in flight;
//! * a **hold script**: one entry per CS entry, in entry order —
//!   `t_exit − t_enter`, or the sentinel for entries the trace never
//!   exits.
//!
//! Feeding both scripts into [`Simulator`] makes its event timeline
//! reproduce the trace's interleaving exactly: externally scheduled
//! requests and crashes land on their action's timestamp, and every
//! delivery and exit the trace performs fires at its action's timestamp
//! while everything else stays past the horizon. Both engines drop sends
//! to crashed sites *before* consuming a delay, which keeps the scripts
//! aligned across crashes.
//!
//! Only traces built from `Request` / `Deliver` / `Exit` / `Crash` /
//! `Abort` (plus trailing `Drop`s — see [`sim_replayable`]) can be
//! scripted: recovery and detector verdicts are driven by the wall-clock
//! heartbeat stack in the simulator and by explicit budgeted transitions
//! in the checker, so they have no deterministic one-to-one counterpart.
//! [`replay`] covers the full alphabet. An `Abort` maps one-to-one onto
//! [`Simulator::schedule_abort`]: both engines run the same `abort_cs`
//! entry point at the action's timestamp, and the withdrawal's `Abandon`
//! sends consume delay-script slots like any other send.
//!
//! `CutLink` / `RestoreLink` *are* admitted: a checker cut is a pure
//! scheduling constraint — it embargoes delivery but queues every send and
//! runs no protocol hook — so its entire observable effect is already
//! encoded in the delay script (embargoed messages simply carry the later
//! delivery time the trace gave them). Scripting `Simulator::schedule_cut`
//! here would *diverge*, not converge: the simulator's partition model
//! drops severed sends without consuming a delay slot, which would shift
//! every later script index. The cut actions therefore schedule nothing.

use crate::state::build_root;
use crate::{Action, CheckOptions, Workload};
use qmx_core::{Effects, Protocol, SiteId};
use qmx_sim::{SimConfig, Simulator};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Outcome of replaying a trace under checker semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Two live sites ended up inside the CS simultaneously.
    MutualExclusion {
        /// The two overlapping sites.
        sites: (SiteId, SiteId),
    },
    /// The trace ends in a state with no enabled action and unserved
    /// demand — the checker's deadlock condition.
    Deadlock {
        /// Live sites still waiting for the CS.
        stuck: Vec<SiteId>,
    },
    /// The whole trace replayed without reaching a violation.
    Completed,
}

/// Outcome of replaying a trace through the discrete-event simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimReplayOutcome {
    /// The simulator's safety monitor tripped (its hard assert fired) —
    /// the simulator confirms the checker's mutual-exclusion violation.
    MutualExclusion,
    /// The run quiesced with live sites still wanting the CS — the
    /// simulator confirms the checker's deadlock.
    Wedged {
        /// Live sites left waiting at quiescence.
        stuck: Vec<SiteId>,
    },
    /// The run quiesced with every live site served.
    Completed,
}

/// Re-executes `trace` from the initial state of `sites` running
/// `workload` under `opts`, verifying that every action is enabled when
/// taken, and reports the outcome. Deterministic: the same trace always
/// reproduces the same outcome, which is how counterexamples returned by
/// [`crate::check_with`] are validated.
///
/// # Panics
///
/// Panics if an action in `trace` is not enabled when its turn comes
/// (i.e. the trace does not belong to this system/scope), or if
/// `workload` does not cover `sites`.
pub fn replay<P>(
    sites: Vec<P>,
    workload: &Workload,
    opts: &CheckOptions<P>,
    trace: &[Action],
) -> ReplayOutcome
where
    P: Protocol + Clone + fmt::Debug,
{
    let (ctx, mut state, _) = build_root(sites, workload, opts);
    let mut fx = Effects::new();
    let mut sent = Vec::new();
    for (k, &a) in trace.iter().enumerate() {
        assert!(
            state.enabled(&ctx).contains(&a),
            "trace action #{k} ({a}) is not enabled"
        );
        state.apply(a, &ctx, &mut fx, &mut sent);
        sent.clear();
        let occ = state.in_cs_sites();
        if occ.len() > 1 {
            return ReplayOutcome::MutualExclusion {
                sites: (occ[0], occ[1]),
            };
        }
    }
    if state.enabled(&ctx).is_empty() {
        let stuck = state.stuck_sites(&ctx);
        if !stuck.is_empty() || state.undone(&ctx) {
            return ReplayOutcome::Deadlock { stuck };
        }
    }
    ReplayOutcome::Completed
}

/// Whether `trace` can be scripted into the simulator: only `Request`,
/// `Deliver`, `Exit`, `Crash`, and `Abort` actions, plus `Drop`s on links that see
/// no later delivery (a dropped message is emulated by an over-horizon
/// delivery time, which — per-link FIFO — would also push every later
/// delivery on that link past the horizon), plus `CutLink`/`RestoreLink`
/// (scheduling-only constraints, realized entirely by the delay script —
/// see the module docs).
pub fn sim_replayable(trace: &[Action]) -> bool {
    let mut dropped_links: Vec<(SiteId, SiteId)> = Vec::new();
    for a in trace {
        match *a {
            Action::Request(_)
            | Action::Exit(_)
            | Action::Crash(_)
            | Action::Abort(_)
            | Action::CutLink { .. }
            | Action::RestoreLink { .. } => {}
            Action::Deliver { from, to } => {
                if dropped_links.contains(&(from, to)) {
                    return false;
                }
            }
            Action::Drop { from, to } => {
                if !dropped_links.contains(&(from, to)) {
                    dropped_links.push((from, to));
                }
            }
            _ => return false,
        }
    }
    true
}

/// Delivery/hold sentinel far past any replay horizon: "never happens".
const NEVER: u64 = 1 << 40;

/// Scripts `trace` into a fresh [`Simulator`] over clones of `sites` and
/// runs it, reporting whether the simulator reproduces the checker's
/// verdict. See the module docs for how the schedule is derived.
///
/// # Panics
///
/// Panics if `trace` is not [`sim_replayable`], if an action is not
/// enabled under checker semantics when its turn comes, or if the
/// simulator panics for any reason other than its mutual-exclusion
/// monitor.
pub fn replay_in_sim<P>(
    sites: Vec<P>,
    workload: &Workload,
    opts: &CheckOptions<P>,
    trace: &[Action],
) -> SimReplayOutcome
where
    P: Protocol + Clone + fmt::Debug,
{
    assert!(
        sim_replayable(trace),
        "trace uses actions with no deterministic simulator counterpart"
    );
    let n = sites.len();
    let universe: Vec<SiteId> = (0..n).map(|i| SiteId(i as u32)).collect();
    let mut sim_sites = sites.clone();
    for s in &mut sim_sites {
        s.set_peer_universe(&universe);
    }
    let mut sim: Simulator<P> = Simulator::new(
        sim_sites,
        SimConfig {
            oracle_notices: false,
            ..SimConfig::default()
        },
    );

    // Checker walk, recording for every queued send its send time and the
    // trace position that consumes it, and for every CS entry its exit.
    let (ctx, mut state, root_sent) = build_root(sites, workload, opts);
    let mut send_time: Vec<u64> = Vec::new();
    let mut delays: Vec<u64> = Vec::new();
    let mut in_flight: BTreeMap<(SiteId, SiteId), VecDeque<usize>> = BTreeMap::new();
    for &(f, t) in &root_sent {
        in_flight.entry((f, t)).or_default().push_back(delays.len());
        send_time.push(0); // `on_start` runs at the simulator's t = 0
        delays.push(NEVER);
    }
    let mut holds: Vec<u64> = Vec::new();
    // site -> (hold-script index, entry time) of its open CS occupancy.
    let mut open_entry: BTreeMap<usize, (usize, u64)> = BTreeMap::new();
    let mut fx = Effects::new();
    let mut sent = Vec::new();
    for (k, &a) in trace.iter().enumerate() {
        let t_k = (k as u64 + 1) * 1000;
        assert!(
            state.enabled(&ctx).contains(&a),
            "trace action #{k} ({a}) is not enabled"
        );
        match a {
            Action::Request(s) => sim.schedule_request(s, t_k),
            Action::Crash(s) => sim.schedule_crash(s, t_k),
            Action::Abort(s) => sim.schedule_abort(s, t_k),
            Action::Deliver { from, to } => {
                let idx = in_flight
                    .get_mut(&(from, to))
                    .and_then(VecDeque::pop_front)
                    .expect("enabled deliver has an in-flight send");
                delays[idx] = t_k - send_time[idx];
            }
            Action::Drop { from, to } => {
                // Consumes the head send; its delay stays NEVER.
                in_flight
                    .get_mut(&(from, to))
                    .and_then(VecDeque::pop_front)
                    .expect("enabled drop has an in-flight send");
            }
            Action::Exit(s) => {
                let (hi, t_enter) = open_entry
                    .remove(&s.index())
                    .expect("exit matches an open CS entry");
                holds[hi] = t_k - t_enter;
            }
            // Scheduling-only: the embargo's effect is the delivery times
            // the trace chose, which the delay script already carries.
            Action::CutLink { .. } | Action::RestoreLink { .. } => {}
            _ => unreachable!("sim_replayable admits no other action"),
        }
        let was_in_cs: Vec<bool> = state.sites.iter().map(Protocol::in_cs).collect();
        state.apply(a, &ctx, &mut fx, &mut sent);
        for &(f, t) in &sent {
            in_flight.entry((f, t)).or_default().push_back(delays.len());
            send_time.push(t_k);
            delays.push(NEVER);
        }
        sent.clear();
        for (i, s) in state.sites.iter().enumerate() {
            if s.in_cs() && !was_in_cs[i] {
                open_entry.insert(i, (holds.len(), t_k));
                holds.push(NEVER);
            }
        }
    }

    sim.script_delays(delays);
    sim.script_holds(holds);
    let horizon = (trace.len() as u64 + 2) * 1000;
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run_to_quiescence(horizon)
    }));
    if let Err(payload) = run {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
            .unwrap_or_default();
        assert!(
            msg.contains("MUTUAL EXCLUSION VIOLATED"),
            "simulator panicked outside its safety monitor: {msg}"
        );
        return SimReplayOutcome::MutualExclusion;
    }
    let stuck: Vec<SiteId> = (0..n)
        .map(|i| SiteId(i as u32))
        .filter(|&s| !sim.is_crashed(s) && (sim.site(s).wants_cs() || sim.site(s).in_cs()))
        .collect();
    if stuck.is_empty() {
        SimReplayOutcome::Completed
    } else {
        SimReplayOutcome::Wedged { stuck }
    }
}
