//! Message-level path tests for the baselines: drive single wire messages
//! and assert the exact responses, pinning down behaviours the
//! harness-level tests only exercise in aggregate.

use qmx_baselines::lamport::LamportMsg;
use qmx_baselines::maekawa::{MaekawaBody, MaekawaMsg};
use qmx_baselines::raymond::RaymondMsg;
use qmx_baselines::ricart_agrawala::RaMsg;
use qmx_baselines::suzuki_kasami::SkMsg;
use qmx_baselines::{Lamport, Maekawa, Raymond, RicartAgrawala, SuzukiKasami};
use qmx_core::{Effects, Protocol, SeqNum, SiteId, Timestamp};

fn fx<M>() -> Effects<M> {
    Effects::new()
}

#[test]
fn lamport_reply_carries_a_later_clock() {
    let mut s = Lamport::new(SiteId(1), 3);
    let mut f = fx();
    s.handle(
        SiteId(0),
        LamportMsg::Request {
            ts: Timestamp::new(41, SiteId(0)),
        },
        &mut f,
    );
    let sends = f.take_sends();
    assert_eq!(sends.len(), 1);
    assert_eq!(sends[0].0, SiteId(0));
    match sends[0].1 {
        LamportMsg::Reply { clk } => assert!(clk > SeqNum(41), "reply clock must exceed request"),
        ref other => panic!("expected reply, got {other:?}"),
    }
}

#[test]
fn lamport_release_unblocks_queued_successor() {
    // S1 queued behind S0's earlier request: S0's release lets S1 in
    // without any further messages (delay T).
    let mut s1 = Lamport::new(SiteId(1), 2);
    let mut f = fx();
    // S0's request arrives first (earlier timestamp)...
    s1.handle(
        SiteId(0),
        LamportMsg::Request {
            ts: Timestamp::new(1, SiteId(0)),
        },
        &mut f,
    );
    // ...then S1 requests (later timestamp) and receives S0's ack.
    s1.request_cs(&mut f);
    s1.handle(SiteId(0), LamportMsg::Reply { clk: SeqNum(50) }, &mut f);
    assert!(!s1.in_cs(), "S0's earlier request heads the queue");
    let mut f2 = fx();
    s1.handle(
        SiteId(0),
        LamportMsg::Release {
            ts: Timestamp::new(1, SiteId(0)),
        },
        &mut f2,
    );
    assert!(f2.entered_cs(), "release alone admits the successor");
}

#[test]
fn ricart_agrawala_defers_only_when_losing() {
    let mut s = RicartAgrawala::new(SiteId(0), 2);
    let mut f = fx();
    s.request_cs(&mut f); // ts (1, S0)
    f.take_sends();
    // Lower-priority request (same seq, higher site id): deferred.
    let mut f = fx();
    s.handle(
        SiteId(1),
        RaMsg::Request {
            ts: Timestamp::new(1, SiteId(1)),
        },
        &mut f,
    );
    assert!(f.take_sends().is_empty(), "losing request is deferred");
    // Higher-priority request (earlier seq... impossible now for S1 whose
    // clock saw ours, but test the rule): immediate reply.
    let mut s2 = RicartAgrawala::new(SiteId(5), 9);
    let mut f = fx();
    s2.request_cs(&mut f);
    f.take_sends();
    let mut f = fx();
    s2.handle(
        SiteId(1),
        RaMsg::Request {
            ts: Timestamp::new(1, SiteId(1)),
        },
        &mut f,
    );
    let sends = f.take_sends();
    assert_eq!(sends.len(), 1);
    assert!(matches!(sends[0].1, RaMsg::Reply));
}

#[test]
fn suzuki_kasami_stale_request_does_not_move_the_token() {
    let mut s0 = SuzukiKasami::new(SiteId(0), 3);
    // S1 requests with n = 1; token ships.
    let mut f = fx();
    s0.handle(SiteId(1), SkMsg::Request { n: 1 }, &mut f);
    let sends = f.take_sends();
    assert_eq!(sends.len(), 1);
    assert!(matches!(sends[0].1, SkMsg::Privilege(_)));
    assert!(!s0.has_token());
    // The same request redelivered conceptually (duplicate): without the
    // token nothing happens.
    let mut f = fx();
    s0.handle(SiteId(1), SkMsg::Request { n: 1 }, &mut f);
    assert!(f.take_sends().is_empty());
}

#[test]
fn suzuki_kasami_token_reception_without_request_parks_it() {
    let mut s2 = SuzukiKasami::new(SiteId(2), 3);
    let mut f = fx();
    s2.handle(
        SiteId(0),
        SkMsg::Privilege(qmx_baselines::suzuki_kasami::Token {
            ln: vec![0, 0, 0],
            queue: std::collections::VecDeque::new(),
        }),
        &mut f,
    );
    assert!(s2.has_token());
    assert!(!s2.in_cs(), "idle token does not imply CS entry");
    assert!(f.take_sends().is_empty());
}

#[test]
fn raymond_forwards_requests_toward_the_token_once() {
    // Site 1 (parent = 0) receives requests from both children: only ONE
    // request flows upward.
    let mut s1 = Raymond::new(SiteId(1), 7);
    let mut f = fx();
    s1.handle(SiteId(3), RaymondMsg::Request, &mut f);
    let sends = f.take_sends();
    assert_eq!(sends, vec![(SiteId(0), RaymondMsg::Request)]);
    let mut f = fx();
    s1.handle(SiteId(4), RaymondMsg::Request, &mut f);
    assert!(
        f.take_sends().is_empty(),
        "second child request piggybacks on the outstanding ask"
    );
}

#[test]
fn raymond_privilege_is_relayed_to_the_queue_head() {
    let mut s1 = Raymond::new(SiteId(1), 7);
    let mut f = fx();
    s1.handle(SiteId(3), RaymondMsg::Request, &mut f);
    f.take_sends();
    let mut f = fx();
    s1.handle(SiteId(0), RaymondMsg::Privilege, &mut f);
    let sends = f.take_sends();
    // Token relayed to child 3; s1 keeps nothing.
    assert_eq!(sends[0], (SiteId(3), RaymondMsg::Privilege));
    assert!(!s1.has_token());
}

#[test]
fn maekawa_release_grants_next_in_priority_order() {
    let mut arb = Maekawa::new(SiteId(9), vec![SiteId(9)]);
    let r1 = Timestamp::new(1, SiteId(1));
    let r3 = Timestamp::new(3, SiteId(3));
    let r2 = Timestamp::new(2, SiteId(2));
    for r in [r1, r3, r2] {
        let mut f = fx();
        arb.handle(
            r.site,
            MaekawaMsg {
                clk: r.seq,
                body: MaekawaBody::Request { ts: r },
            },
            &mut f,
        );
    }
    assert_eq!(arb.lock_holder(), Some(r1));
    let mut f = fx();
    arb.handle(
        SiteId(1),
        MaekawaMsg {
            clk: SeqNum(9),
            body: MaekawaBody::Release { req: r1 },
        },
        &mut f,
    );
    // Priority order: r2 before r3 even though r3 arrived first.
    assert_eq!(arb.lock_holder(), Some(r2));
    let sends = f.take_sends();
    assert_eq!(sends.len(), 1);
    assert_eq!(sends[0].0, SiteId(2));
}

#[test]
fn maekawa_inquire_to_hopeful_site_is_parked_until_fail() {
    let mut s = Maekawa::new(SiteId(1), vec![SiteId(8), SiteId(9)]);
    let mut f = fx();
    s.request_cs(&mut f);
    f.take_sends();
    let my = Timestamp::new(1, SiteId(1));
    // S9 grants, then inquires; S1 is hopeful (no fail yet): no yield.
    for body in [
        MaekawaBody::Reply { req: my },
        MaekawaBody::Inquire { holder_req: my },
    ] {
        let mut f = fx();
        s.handle(
            SiteId(9),
            MaekawaMsg {
                clk: SeqNum(5),
                body,
            },
            &mut f,
        );
        assert!(f.take_sends().is_empty());
    }
    // The fail from S8 flips it: the parked inquire is answered with a
    // yield to S9.
    let mut f = fx();
    s.handle(
        SiteId(8),
        MaekawaMsg {
            clk: SeqNum(6),
            body: MaekawaBody::Fail { req: my },
        },
        &mut f,
    );
    let sends = f.take_sends();
    assert_eq!(sends.len(), 1);
    assert_eq!(sends[0].0, SiteId(9));
    assert!(matches!(sends[0].1.body, MaekawaBody::Yield { req } if req == my));
}
