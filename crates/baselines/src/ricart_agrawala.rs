//! The Ricart–Agrawala algorithm (1981).
//!
//! An optimization of Lamport's algorithm that merges `release` into
//! deferred `reply` messages: a site receiving a request while it is in the
//! CS — or while it is requesting with higher priority — defers its reply
//! until it exits. `2(N−1)` messages per CS, synchronization delay `T`.

use qmx_core::{Effects, LamportClock, MsgKind, MsgMeta, Protocol, SiteId, Timestamp};
use std::collections::BTreeSet;

/// Wire messages of Ricart–Agrawala.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaMsg {
    /// Broadcast CS request.
    Request {
        /// Timestamp of the request.
        ts: Timestamp,
    },
    /// Permission (possibly deferred until the sender's CS exit).
    Reply,
}

impl MsgMeta for RaMsg {
    fn kind(&self) -> MsgKind {
        match self {
            RaMsg::Request { .. } => MsgKind::Request,
            RaMsg::Reply => MsgKind::Reply,
        }
    }
}

/// One site of the Ricart–Agrawala algorithm over `n` sites.
///
/// ```
/// use qmx_baselines::RicartAgrawala;
/// use qmx_core::{Effects, Protocol, SiteId};
/// let mut s = RicartAgrawala::new(SiteId(0), 1);
/// let mut fx = Effects::new();
/// s.request_cs(&mut fx); // single-site system: immediate entry
/// assert!(s.in_cs());
/// ```
#[derive(Debug, Clone)]
pub struct RicartAgrawala {
    site: SiteId,
    n: u32,
    clock: LamportClock,
    my_req: Option<Timestamp>,
    replies: BTreeSet<SiteId>,
    deferred: BTreeSet<SiteId>,
    in_cs: bool,
}

impl RicartAgrawala {
    /// Creates site `site` of an `n`-site system.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside `0..n`.
    pub fn new(site: SiteId, n: u32) -> Self {
        assert!(site.0 < n, "site outside universe");
        RicartAgrawala {
            site,
            n,
            clock: LamportClock::new(),
            my_req: None,
            replies: BTreeSet::new(),
            deferred: BTreeSet::new(),
            in_cs: false,
        }
    }

    fn maybe_enter(&mut self, fx: &mut Effects<RaMsg>) {
        if !self.in_cs && self.my_req.is_some() && self.replies.len() as u32 == self.n - 1 {
            self.in_cs = true;
            fx.enter_cs();
        }
    }
}

impl Protocol for RicartAgrawala {
    type Msg = RaMsg;

    fn site(&self) -> SiteId {
        self.site
    }

    fn request_cs(&mut self, fx: &mut Effects<RaMsg>) {
        assert!(self.my_req.is_none(), "one outstanding request per site");
        let ts = Timestamp {
            seq: self.clock.tick(),
            site: self.site,
        };
        self.my_req = Some(ts);
        self.replies.clear();
        for j in (0..self.n).map(SiteId).filter(|s| *s != self.site) {
            fx.send(j, RaMsg::Request { ts });
        }
        self.maybe_enter(fx);
    }

    fn release_cs(&mut self, fx: &mut Effects<RaMsg>) {
        assert!(self.in_cs, "not in CS");
        self.in_cs = false;
        self.my_req = None;
        self.replies.clear();
        for j in std::mem::take(&mut self.deferred) {
            fx.send(j, RaMsg::Reply);
        }
    }

    fn handle(&mut self, from: SiteId, msg: RaMsg, fx: &mut Effects<RaMsg>) {
        match msg {
            RaMsg::Request { ts } => {
                self.clock.observe_ts(ts);
                // Defer iff we are in the CS, or we are requesting with
                // higher priority than the incoming request.
                let defer = self.in_cs || self.my_req.is_some_and(|my| my.beats(&ts));
                if defer {
                    self.deferred.insert(from);
                } else {
                    fx.send(from, RaMsg::Reply);
                }
            }
            RaMsg::Reply => {
                self.replies.insert(from);
                self.maybe_enter(fx);
            }
        }
    }

    fn in_cs(&self) -> bool {
        self.in_cs
    }

    fn wants_cs(&self) -> bool {
        self.my_req.is_some() && !self.in_cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Harness;

    fn harness(n: u32) -> Harness<RicartAgrawala> {
        Harness::new((0..n).map(|i| RicartAgrawala::new(SiteId(i), n)).collect())
    }

    #[test]
    fn uncontended_entry_costs_2_n_minus_1() {
        let mut h = harness(6);
        h.request(3);
        let pre = h.settle();
        assert!(h.sites[3].in_cs());
        assert_eq!(pre, 10); // 5 requests + 5 replies
        h.release(3);
        let post = h.settle();
        assert_eq!(post, 0, "no release messages when nothing is deferred");
        assert_eq!(pre + post, 2 * 5);
    }

    #[test]
    fn deferred_reply_doubles_as_release() {
        let mut h = harness(2);
        h.request(0);
        h.settle();
        h.request(1);
        h.settle();
        assert!(h.sites[0].in_cs());
        assert!(h.sites[1].wants_cs());
        h.release(0);
        let msgs = h.settle();
        // Exactly one deferred reply flows 0 -> 1 and admits site 1.
        assert_eq!(msgs, 1);
        assert!(h.sites[1].in_cs());
    }

    #[test]
    fn contention_is_safe_and_live() {
        let mut h = harness(5);
        for i in 0..5 {
            h.request(i);
        }
        h.drain_all(5);
    }

    #[test]
    fn priority_breaks_simultaneous_requests() {
        // Both request before any message is delivered: equal sequence
        // numbers, so the smaller site id wins.
        let mut h = harness(2);
        h.request(0);
        h.request(1);
        h.settle();
        assert_eq!(h.who_is_in_cs(), Some(0));
        h.release(0);
        h.settle();
        assert_eq!(h.who_is_in_cs(), Some(1));
    }

    #[test]
    fn single_site_enters_immediately() {
        let mut h = harness(1);
        h.request(0);
        assert!(h.sites[0].in_cs());
    }
}
