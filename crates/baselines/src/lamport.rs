//! Lamport's mutual exclusion algorithm (1978).
//!
//! Every site keeps a priority queue of all outstanding requests. To enter,
//! a site broadcasts `request(ts)` to the other `N−1` sites and waits until
//! (a) its request heads its local queue and (b) it has received a message
//! timestamped later than its request from every other site (here: an
//! explicit `reply`). On exit it broadcasts `release`.
//!
//! Message complexity `3(N−1)`, synchronization delay `T` (the release goes
//! straight to the next site) — the first row of the paper's Table 1.

use qmx_core::{
    Effects, LamportClock, MsgKind, MsgMeta, Protocol, ReqQueue, SeqNum, SiteId, Timestamp,
};
use std::collections::BTreeSet;

/// Wire messages of Lamport's algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LamportMsg {
    /// Broadcast CS request.
    Request {
        /// Timestamp of the request.
        ts: Timestamp,
    },
    /// Acknowledgement carrying the sender's clock.
    Reply {
        /// Sender clock at reply time (must exceed the request's).
        clk: SeqNum,
    },
    /// Broadcast CS exit.
    Release {
        /// The completed request.
        ts: Timestamp,
    },
}

impl MsgMeta for LamportMsg {
    fn kind(&self) -> MsgKind {
        match self {
            LamportMsg::Request { .. } => MsgKind::Request,
            LamportMsg::Reply { .. } => MsgKind::Reply,
            LamportMsg::Release { .. } => MsgKind::Release,
        }
    }
}

/// One site of Lamport's algorithm over `n` sites.
///
/// ```
/// use qmx_baselines::Lamport;
/// use qmx_core::{Effects, Protocol, SiteId};
/// let mut s = Lamport::new(SiteId(0), 3);
/// let mut fx = Effects::new();
/// s.request_cs(&mut fx);
/// assert_eq!(fx.sends().len(), 2); // request broadcast to the other two
/// ```
#[derive(Debug, Clone)]
pub struct Lamport {
    site: SiteId,
    n: u32,
    clock: LamportClock,
    queue: ReqQueue,
    my_req: Option<Timestamp>,
    acked: BTreeSet<SiteId>,
    in_cs: bool,
}

impl Lamport {
    /// Creates site `site` of an `n`-site system.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside `0..n`.
    pub fn new(site: SiteId, n: u32) -> Self {
        assert!(site.0 < n, "site outside universe");
        Lamport {
            site,
            n,
            clock: LamportClock::new(),
            queue: ReqQueue::new(),
            my_req: None,
            acked: BTreeSet::new(),
            in_cs: false,
        }
    }

    fn others(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.n).map(SiteId).filter(move |s| *s != self.site)
    }

    fn maybe_enter(&mut self, fx: &mut Effects<LamportMsg>) {
        if self.in_cs {
            return;
        }
        let Some(my) = self.my_req else { return };
        let at_head = self.queue.head() == Some(my);
        let all_acked = self.acked.len() as u32 == self.n - 1;
        if at_head && all_acked {
            self.in_cs = true;
            fx.enter_cs();
        }
    }
}

impl Protocol for Lamport {
    type Msg = LamportMsg;

    fn site(&self) -> SiteId {
        self.site
    }

    fn request_cs(&mut self, fx: &mut Effects<LamportMsg>) {
        assert!(self.my_req.is_none(), "one outstanding request per site");
        let ts = Timestamp {
            seq: self.clock.tick(),
            site: self.site,
        };
        self.my_req = Some(ts);
        self.acked.clear();
        self.queue.insert(ts);
        for j in self.others().collect::<Vec<_>>() {
            fx.send(j, LamportMsg::Request { ts });
        }
        self.maybe_enter(fx); // single-site system enters immediately
    }

    fn release_cs(&mut self, fx: &mut Effects<LamportMsg>) {
        assert!(self.in_cs, "not in CS");
        let ts = self.my_req.take().expect("in CS implies request");
        self.in_cs = false;
        self.queue.remove(&ts);
        self.acked.clear();
        for j in self.others().collect::<Vec<_>>() {
            fx.send(j, LamportMsg::Release { ts });
        }
    }

    fn handle(&mut self, from: SiteId, msg: LamportMsg, fx: &mut Effects<LamportMsg>) {
        match msg {
            LamportMsg::Request { ts } => {
                self.clock.observe_ts(ts);
                self.queue.insert(ts);
                fx.send(
                    from,
                    LamportMsg::Reply {
                        clk: self.clock.tick(),
                    },
                );
            }
            LamportMsg::Reply { clk } => {
                self.clock.observe(clk);
                self.acked.insert(from);
            }
            LamportMsg::Release { ts } => {
                self.clock.observe_ts(ts);
                self.queue.remove(&ts);
            }
        }
        self.maybe_enter(fx);
    }

    fn in_cs(&self) -> bool {
        self.in_cs
    }

    fn wants_cs(&self) -> bool {
        self.my_req.is_some() && !self.in_cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Harness;

    fn harness(n: u32) -> Harness<Lamport> {
        Harness::new((0..n).map(|i| Lamport::new(SiteId(i), n)).collect())
    }

    #[test]
    fn single_request_costs_3_n_minus_1() {
        let mut h = harness(5);
        h.request(0);
        let pre = h.settle();
        assert!(h.sites[0].in_cs());
        assert_eq!(pre, 8); // 4 requests + 4 replies
        h.release(0);
        let post = h.settle();
        assert_eq!(post, 4); // 4 releases
        assert_eq!(pre + post, 3 * 4);
    }

    #[test]
    fn contention_is_safe_and_fifo_by_timestamp() {
        let mut h = harness(4);
        for i in 0..4 {
            h.request(i);
        }
        h.drain_all(4);
    }

    #[test]
    fn lower_timestamp_enters_first() {
        let mut h = harness(3);
        h.request(0);
        h.settle();
        assert!(h.sites[0].in_cs());
        h.request(1);
        h.request(2);
        h.settle();
        h.release(0);
        h.settle();
        // Site 1 requested before 2's message reached anyone, but both have
        // distinct timestamps; ordering is by (seq, site).
        assert_eq!(h.who_is_in_cs(), Some(1));
    }

    #[test]
    fn single_site_system_enters_immediately() {
        let mut h = harness(1);
        h.request(0);
        assert!(h.sites[0].in_cs());
        assert_eq!(h.settle(), 0);
        h.release(0);
        assert_eq!(h.settle(), 0);
    }

    #[test]
    fn wants_cs_reflects_wait_state() {
        let mut h = harness(2);
        h.request(0);
        assert!(h.sites[0].wants_cs());
        h.settle();
        assert!(!h.sites[0].wants_cs());
        assert!(h.sites[0].in_cs());
    }

    #[test]
    #[should_panic(expected = "one outstanding request")]
    fn double_request_panics() {
        let mut h = harness(2);
        h.request(0);
        h.request(0);
    }
}
