//! Synchronous in-crate test harness: drives a set of protocol instances by
//! delivering messages FIFO until quiescence. Only compiled for tests.

use qmx_core::{Effects, Protocol, SiteId};
use std::collections::VecDeque;

/// A tiny synchronous network of protocol instances.
pub(crate) struct Harness<P: Protocol> {
    pub sites: Vec<P>,
    inflight: VecDeque<(SiteId, SiteId, P::Msg)>,
}

impl<P: Protocol> Harness<P> {
    pub fn new(sites: Vec<P>) -> Self {
        let mut h = Harness {
            sites,
            inflight: VecDeque::new(),
        };
        for i in 0..h.sites.len() {
            let mut fx = Effects::new();
            h.sites[i].on_start(&mut fx);
            h.collect(SiteId(i as u32), &mut fx);
        }
        h
    }

    fn collect(&mut self, from: SiteId, fx: &mut Effects<P::Msg>) {
        for (to, msg) in fx.take_sends() {
            self.inflight.push_back((from, to, msg));
        }
    }

    pub fn request(&mut self, s: u32) {
        let mut fx = Effects::new();
        self.sites[s as usize].request_cs(&mut fx);
        self.collect(SiteId(s), &mut fx);
    }

    pub fn release(&mut self, s: u32) {
        let mut fx = Effects::new();
        self.sites[s as usize].release_cs(&mut fx);
        self.collect(SiteId(s), &mut fx);
    }

    /// Delivers all in-flight messages (FIFO) until quiescence, asserting
    /// the mutual exclusion invariant after every delivery. Returns the
    /// number of messages delivered.
    pub fn settle(&mut self) -> usize {
        let mut count = 0;
        while let Some((from, to, msg)) = self.inflight.pop_front() {
            count += 1;
            let mut fx = Effects::new();
            self.sites[to.index()].handle(from, msg, &mut fx);
            self.collect(to, &mut fx);
            assert!(
                self.in_cs_count() <= 1,
                "mutual exclusion violated after delivery #{count}"
            );
        }
        count
    }

    pub fn in_cs_count(&self) -> usize {
        self.sites.iter().filter(|s| s.in_cs()).count()
    }

    pub fn who_is_in_cs(&self) -> Option<u32> {
        self.sites.iter().position(|s| s.in_cs()).map(|i| i as u32)
    }

    /// Runs a full round-robin: everyone requests, then the CS is drained
    /// one holder at a time. Asserts all `n` executions complete.
    pub fn drain_all(&mut self, n: usize) {
        self.settle();
        let mut done = 0;
        while let Some(cur) = self.who_is_in_cs() {
            self.release(cur);
            self.settle();
            done += 1;
            assert!(done <= n, "more CS executions than requests");
        }
        assert_eq!(done, n, "not all requests completed");
        assert!(self.sites.iter().all(|s| !s.wants_cs()));
    }
}
