//! Raymond's tree-based token algorithm (1989).
//!
//! Sites form a static (logical) tree; each site tracks `holder`, the
//! neighbor in whose direction the token lies. Requests travel hop by hop
//! toward the token and the token travels back along the reversed path,
//! flipping `holder` pointers as it goes. Average `O(log N)` messages per
//! CS — the lowest in the paper's Table 1 — but the token's serial walk
//! makes the synchronization delay `O(T·log N)`, and a lost token halts
//! the system (the drawbacks §1 cites for token algorithms).
//!
//! This implementation uses the heap-shaped tree over `0..N` (children of
//! `i` are `2i+1`, `2i+2`) with the token initially at the root, site 0.

use qmx_core::{Effects, MsgKind, MsgMeta, Protocol, SiteId};
use std::collections::VecDeque;

/// Wire messages of Raymond's algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaymondMsg {
    /// Ask the neighbor toward the token for the privilege.
    Request,
    /// The privilege token, handed to a neighbor.
    Privilege,
}

impl MsgMeta for RaymondMsg {
    fn kind(&self) -> MsgKind {
        match self {
            RaymondMsg::Request => MsgKind::Request,
            RaymondMsg::Privilege => MsgKind::Token,
        }
    }
}

/// One site of Raymond's tree algorithm.
///
/// ```
/// use qmx_baselines::Raymond;
/// use qmx_core::{Effects, Protocol, SiteId};
/// let mut leaf = Raymond::new(SiteId(5), 7); // parent is site 2
/// let mut fx = Effects::new();
/// leaf.request_cs(&mut fx);
/// // The request travels one hop toward the token holder (the root).
/// assert_eq!(fx.sends().len(), 1);
/// assert_eq!(fx.sends()[0].0, SiteId(2));
/// ```
#[derive(Debug, Clone)]
pub struct Raymond {
    site: SiteId,
    n: u32,
    /// Neighbor in the token's direction; `site` itself iff it holds the
    /// token.
    holder: SiteId,
    /// FIFO of neighbors (or self) whose requests await the token.
    request_q: VecDeque<SiteId>,
    /// Whether we already asked `holder` on behalf of the queue.
    asked: bool,
    in_cs: bool,
    wants: bool,
}

impl Raymond {
    /// Creates site `site` of an `n`-site system (token at site 0).
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside `0..n`.
    pub fn new(site: SiteId, n: u32) -> Self {
        assert!(site.0 < n, "site outside universe");
        let holder = if site.0 == 0 {
            site
        } else {
            SiteId((site.0 - 1) / 2) // parent in the heap tree
        };
        Raymond {
            site,
            n,
            holder,
            request_q: VecDeque::new(),
            asked: false,
            in_cs: false,
            wants: false,
        }
    }

    /// Whether this site currently holds the token.
    pub fn has_token(&self) -> bool {
        self.holder == self.site
    }

    /// The tree depth of this site (root = 0); the worst-case hop count for
    /// its requests is twice the tree height.
    pub fn depth(&self) -> u32 {
        (self.site.0 + 1).ilog2()
    }

    fn assign_privilege(&mut self, fx: &mut Effects<RaymondMsg>) {
        if self.holder != self.site || self.in_cs {
            return;
        }
        let Some(next) = self.request_q.pop_front() else {
            return;
        };
        if next == self.site {
            self.wants = false;
            self.in_cs = true;
            fx.enter_cs();
        } else {
            self.holder = next;
            self.asked = false;
            fx.send(next, RaymondMsg::Privilege);
            self.make_request(fx);
        }
    }

    fn make_request(&mut self, fx: &mut Effects<RaymondMsg>) {
        if self.holder != self.site && !self.request_q.is_empty() && !self.asked {
            self.asked = true;
            fx.send(self.holder, RaymondMsg::Request);
        }
    }

    fn n_sites(&self) -> u32 {
        self.n
    }
}

impl Protocol for Raymond {
    type Msg = RaymondMsg;

    fn site(&self) -> SiteId {
        self.site
    }

    fn request_cs(&mut self, fx: &mut Effects<RaymondMsg>) {
        assert!(!self.wants && !self.in_cs, "one outstanding request");
        self.wants = true;
        self.request_q.push_back(self.site);
        self.assign_privilege(fx);
        self.make_request(fx);
        let _ = self.n_sites();
    }

    fn release_cs(&mut self, fx: &mut Effects<RaymondMsg>) {
        assert!(self.in_cs, "not in CS");
        self.in_cs = false;
        self.assign_privilege(fx);
        self.make_request(fx);
    }

    fn handle(&mut self, from: SiteId, msg: RaymondMsg, fx: &mut Effects<RaymondMsg>) {
        match msg {
            RaymondMsg::Request => {
                self.request_q.push_back(from);
                self.assign_privilege(fx);
                self.make_request(fx);
            }
            RaymondMsg::Privilege => {
                debug_assert_eq!(self.holder, from, "token from unexpected direction");
                self.holder = self.site;
                self.asked = false;
                self.assign_privilege(fx);
                self.make_request(fx);
            }
        }
    }

    fn in_cs(&self) -> bool {
        self.in_cs
    }

    fn wants_cs(&self) -> bool {
        self.wants && !self.in_cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Harness;

    fn harness(n: u32) -> Harness<Raymond> {
        Harness::new((0..n).map(|i| Raymond::new(SiteId(i), n)).collect())
    }

    #[test]
    fn root_enters_for_free() {
        let mut h = harness(7);
        h.request(0);
        assert!(h.sites[0].in_cs());
        assert_eq!(h.settle(), 0);
        h.release(0);
        assert_eq!(h.settle(), 0);
        assert!(h.sites[0].has_token());
    }

    #[test]
    fn leaf_request_walks_the_tree() {
        let mut h = harness(7);
        h.request(6); // leaf at depth 2: requests 6->2->0, token 0->2->6
        let msgs = h.settle();
        assert!(h.sites[6].in_cs());
        assert_eq!(msgs, 4);
        assert!(h.sites[6].has_token());
        // Holder pointers now lead toward site 6.
        assert_eq!(h.sites[0].holder, SiteId(2));
        assert_eq!(h.sites[2].holder, SiteId(6));
    }

    #[test]
    fn contention_is_safe_and_live() {
        let mut h = harness(7);
        for i in [5, 1, 6, 0, 3, 2, 4] {
            h.request(i);
        }
        h.drain_all(7);
    }

    #[test]
    fn token_moves_between_siblings_through_parent() {
        let mut h = harness(3);
        h.request(1);
        h.settle();
        assert!(h.sites[1].in_cs());
        h.release(1);
        h.settle();
        h.request(2);
        let msgs = h.settle();
        // 2 -> 0 request, then token travels 1 -> 0 -> 2.
        assert!(h.sites[2].in_cs());
        assert!(msgs >= 3);
        h.release(2);
        h.settle();
    }

    #[test]
    fn depth_is_heap_depth() {
        let h = harness(7);
        assert_eq!(h.sites[0].depth(), 0);
        assert_eq!(h.sites[2].depth(), 1);
        assert_eq!(h.sites[6].depth(), 2);
    }

    #[test]
    fn repeated_rounds_keep_working() {
        let mut h = harness(7);
        for round in 0..3 {
            for i in 0..7 {
                h.request(i);
            }
            h.drain_all(7);
            assert_eq!(h.in_cs_count(), 0, "round {round}");
        }
    }
}
