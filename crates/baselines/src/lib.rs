//! # qmx-baselines
//!
//! The classical distributed mutual exclusion algorithms the paper compares
//! against (its Table 1), implemented on the same
//! [`qmx_core::Protocol`] state-machine interface as the delay-optimal
//! algorithm so they run unchanged under `qmx-sim` and `qmx-runtime`:
//!
//! | Algorithm | Module | Messages/CS | Sync delay |
//! |---|---|---|---|
//! | Lamport | [`lamport`] | `3(N−1)` | `T` |
//! | Ricart–Agrawala | [`ricart_agrawala`] | `2(N−1)` | `T` |
//! | Maekawa | [`maekawa`] | `3(K−1)`–`5(K−1)` | `2T` |
//! | Suzuki–Kasami | [`suzuki_kasami`] | `0` or `N` | `T` |
//! | Raymond tree | [`raymond`] | `O(log N)` | `(T·log N)/2` |
//! | Singhal dynamic | [`singhal_dynamic`] | `(N−1)`–`2(N−1)` avg | `T` |
//! | Carvalho–Roucairol | [`carvalho_roucairol`] | `0`–`2(N−1)` | `T` |
//!
//! All six are full implementations (Maekawa includes the
//! inquire/fail/yield deadlock-resolution machinery), not simplified
//! sketches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod carvalho_roucairol;
pub mod lamport;
pub mod maekawa;
pub mod raymond;
pub mod ricart_agrawala;
pub mod singhal_dynamic;
pub mod suzuki_kasami;

pub use carvalho_roucairol::CarvalhoRoucairol;
pub use lamport::Lamport;
pub use maekawa::Maekawa;
pub use raymond::Raymond;
pub use ricart_agrawala::RicartAgrawala;
pub use singhal_dynamic::SinghalDynamic;
pub use suzuki_kasami::SuzukiKasami;

#[cfg(test)]
pub(crate) mod testutil;
