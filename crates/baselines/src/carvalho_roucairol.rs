//! The Carvalho–Roucairol optimization of Ricart–Agrawala (1983).
//!
//! Observation: once site `i` has received `j`'s permission, it may enter
//! the CS repeatedly **without asking `j` again** until `j` itself
//! requests. Each site keeps the set of sites whose standing permission it
//! holds; a request round only contacts the sites *not* in that set. Under
//! locality (a site re-entering repeatedly) the message cost per CS drops
//! toward zero; under uniform load it approaches Ricart–Agrawala's
//! `2(N−1)`. The price is the same information-structure bookkeeping idea
//! Singhal's dynamic algorithm later generalized.
//!
//! Safety argument: for any pair `{i, j}`, exactly one of them holds the
//! pair's standing permission when both are idle (initially the
//! smaller-id site). To enter, a site needs the standing permission of
//! every other site; when it grants (on request, by priority), it gives
//! the permission away and must re-ask later.

use qmx_core::{Effects, LamportClock, MsgKind, MsgMeta, Protocol, SiteId, Timestamp};
use std::collections::BTreeSet;

/// Wire messages (same as Ricart–Agrawala).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrMsg {
    /// CS request.
    Request {
        /// Timestamp of the request.
        ts: Timestamp,
    },
    /// Permission grant (standing: valid until the granter re-requests).
    Reply,
}

impl MsgMeta for CrMsg {
    fn kind(&self) -> MsgKind {
        match self {
            CrMsg::Request { .. } => MsgKind::Request,
            CrMsg::Reply => MsgKind::Reply,
        }
    }
}

/// One site of the Carvalho–Roucairol algorithm over `n` sites.
///
/// ```
/// use qmx_baselines::CarvalhoRoucairol;
/// use qmx_core::{Effects, Protocol, SiteId};
/// // Site 0 starts holding everyone's standing permission: free entry.
/// let mut s = CarvalhoRoucairol::new(SiteId(0), 5);
/// let mut fx = Effects::new();
/// s.request_cs(&mut fx);
/// assert!(s.in_cs());
/// assert!(fx.sends().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CarvalhoRoucairol {
    site: SiteId,
    n: u32,
    clock: LamportClock,
    /// Sites whose standing permission we hold.
    granted_by: BTreeSet<SiteId>,
    my_req: Option<Timestamp>,
    deferred: BTreeSet<SiteId>,
    in_cs: bool,
}

impl CarvalhoRoucairol {
    /// Creates site `site` of an `n`-site system. Initially the pair
    /// permission of `{i, j}` rests with the smaller id, so site `i`
    /// starts holding the permissions of all larger-id sites.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside `0..n`.
    pub fn new(site: SiteId, n: u32) -> Self {
        assert!(site.0 < n, "site outside universe");
        CarvalhoRoucairol {
            site,
            n,
            clock: LamportClock::new(),
            granted_by: (site.0 + 1..n).map(SiteId).collect(),
            my_req: None,
            deferred: BTreeSet::new(),
            in_cs: false,
        }
    }

    /// How many standing permissions this site currently holds.
    pub fn standing_permissions(&self) -> usize {
        self.granted_by.len()
    }

    fn maybe_enter(&mut self, fx: &mut Effects<CrMsg>) {
        if !self.in_cs && self.my_req.is_some() && self.granted_by.len() as u32 == self.n - 1 {
            self.in_cs = true;
            fx.enter_cs();
        }
    }
}

impl Protocol for CarvalhoRoucairol {
    type Msg = CrMsg;

    fn site(&self) -> SiteId {
        self.site
    }

    fn request_cs(&mut self, fx: &mut Effects<CrMsg>) {
        assert!(self.my_req.is_none(), "one outstanding request per site");
        let ts = Timestamp {
            seq: self.clock.tick(),
            site: self.site,
        };
        self.my_req = Some(ts);
        // Only ask the sites whose standing permission we lack.
        for j in (0..self.n)
            .map(SiteId)
            .filter(|s| *s != self.site && !self.granted_by.contains(s))
        {
            fx.send(j, CrMsg::Request { ts });
        }
        self.maybe_enter(fx);
    }

    fn release_cs(&mut self, fx: &mut Effects<CrMsg>) {
        assert!(self.in_cs, "not in CS");
        self.in_cs = false;
        self.my_req = None;
        // Grant the deferred requesters: each takes its pair permission
        // with it.
        for j in std::mem::take(&mut self.deferred) {
            self.granted_by.remove(&j);
            fx.send(j, CrMsg::Reply);
        }
    }

    fn handle(&mut self, from: SiteId, msg: CrMsg, fx: &mut Effects<CrMsg>) {
        match msg {
            CrMsg::Request { ts } => {
                self.clock.observe_ts(ts);
                if self.in_cs {
                    self.deferred.insert(from);
                } else if let Some(my) = self.my_req {
                    if my.beats(&ts) {
                        self.deferred.insert(from);
                    } else {
                        // The incoming request wins: hand the pair
                        // permission over, and because we are still
                        // waiting, re-ask immediately (the CR "lost
                        // permission" rule).
                        self.granted_by.remove(&from);
                        fx.send(from, CrMsg::Reply);
                        fx.send(from, CrMsg::Request { ts: my });
                    }
                } else {
                    self.granted_by.remove(&from);
                    fx.send(from, CrMsg::Reply);
                }
            }
            CrMsg::Reply => {
                self.granted_by.insert(from);
                self.maybe_enter(fx);
            }
        }
    }

    fn in_cs(&self) -> bool {
        self.in_cs
    }

    fn wants_cs(&self) -> bool {
        self.my_req.is_some() && !self.in_cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Harness;

    fn harness(n: u32) -> Harness<CarvalhoRoucairol> {
        Harness::new(
            (0..n)
                .map(|i| CarvalhoRoucairol::new(SiteId(i), n))
                .collect(),
        )
    }

    #[test]
    fn initial_permissions_form_a_staircase() {
        let h = harness(4);
        assert_eq!(h.sites[0].standing_permissions(), 3);
        assert_eq!(h.sites[3].standing_permissions(), 0);
    }

    #[test]
    fn site_zero_enters_for_free() {
        let mut h = harness(4);
        h.request(0);
        assert!(h.sites[0].in_cs());
        assert_eq!(h.settle(), 0);
        h.release(0);
        assert_eq!(h.settle(), 0);
    }

    #[test]
    fn reentry_after_acquiring_costs_nothing() {
        let mut h = harness(3);
        h.request(2); // must ask 0 and 1
        let first = h.settle();
        assert!(h.sites[2].in_cs());
        assert_eq!(first, 4); // 2 requests + 2 replies
        h.release(2);
        h.settle();
        // Nobody asked in between: site 2 still holds both permissions.
        h.request(2);
        assert!(h.sites[2].in_cs());
        assert_eq!(h.settle(), 0, "standing permissions make re-entry free");
        h.release(2);
        h.settle();
    }

    #[test]
    fn permissions_migrate_with_grants() {
        let mut h = harness(2);
        h.request(1);
        h.settle();
        assert!(h.sites[1].in_cs());
        assert_eq!(h.sites[0].standing_permissions(), 0);
        assert_eq!(h.sites[1].standing_permissions(), 1);
        h.release(1);
        h.settle();
        // Now 0 must ask 1.
        h.request(0);
        h.settle();
        assert!(h.sites[0].in_cs());
        h.release(0);
        h.settle();
    }

    #[test]
    fn contention_is_safe_and_live() {
        let mut h = harness(5);
        for i in [3, 1, 4, 0, 2] {
            h.request(i);
        }
        h.drain_all(5);
    }

    #[test]
    fn repeated_rounds_stay_correct() {
        let mut h = harness(4);
        for _ in 0..3 {
            for i in 0..4 {
                h.request(i);
            }
            h.drain_all(4);
        }
    }

    #[test]
    fn waiting_loser_re_asks_immediately() {
        // Site 1 waits with a later timestamp; site 0's earlier request
        // arrives: 1 must reply AND re-request in the same step.
        let mut h = harness(2);
        h.request(1); // ts (1, S1), sent to 0
        h.request(0); // ts (1, S0) — beats (1, S1)
        h.settle();
        assert!(h.sites[0].in_cs());
        assert!(h.sites[1].wants_cs());
        h.release(0);
        h.settle();
        assert!(h.sites[1].in_cs(), "the re-ask must not be lost");
        h.release(1);
        h.settle();
    }
}
