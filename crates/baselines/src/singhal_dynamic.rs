//! Singhal's dynamic information-structure algorithm (1992) — reference
//! \[16\] of the paper.
//!
//! Each site `i` maintains a *request set* `R_i`: the sites whose
//! permission it must collect. Initially the sets form a staircase —
//! `R_i = {0, …, i−1}` — so that for every pair of sites at least one asks
//! the other. The sets adapt: whenever a site grants its permission to `j`,
//! it adds `j` to its own request set (it must ask `j` before entering
//! again, because `j` may now be ahead of it). A site that grants a
//! *higher-priority* request while itself waiting also forwards its own
//! pending request to the grantee, so the pairwise-coverage invariant is
//! maintained.
//!
//! At light load site `i` exchanges `2·|R_i|` messages (average `N−1`
//! across sites, the figure the paper quotes); under sustained load the
//! sets converge toward full and the behaviour approaches Ricart–Agrawala's
//! `2(N−1)`. Synchronization delay is `T` (a deferred grant flows directly
//! to the next site).
//!
//! **Reproduction note**: the original algorithm also *shrinks* request
//! sets on CS exit to keep them near the staircase; the shrink rule is an
//! optimization that does not affect safety, delay, or the light/heavy-load
//! complexity envelope the paper's Table 1 reports, and is omitted here.
//! Sets only grow (toward `N−1`). The invariant that makes the algorithm
//! safe — *for every pair of sites, at least one has the other in its
//! request set, and a site that has granted `j` re-asks `j` before its own
//! next entry* — is enforced exactly.

use qmx_core::{Effects, LamportClock, MsgKind, MsgMeta, Protocol, SiteId, Timestamp};
use std::collections::BTreeSet;

/// Wire messages of Singhal's dynamic algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdMsg {
    /// CS request.
    Request {
        /// Timestamp of the request.
        ts: Timestamp,
    },
    /// Permission grant (possibly deferred until CS exit).
    Reply,
}

impl MsgMeta for SdMsg {
    fn kind(&self) -> MsgKind {
        match self {
            SdMsg::Request { .. } => MsgKind::Request,
            SdMsg::Reply => MsgKind::Reply,
        }
    }
}

/// One site of Singhal's dynamic information-structure algorithm.
///
/// ```
/// use qmx_baselines::SinghalDynamic;
/// use qmx_core::{Effects, Protocol, SiteId};
/// // The staircase: site 3 initially asks sites 0, 1, 2.
/// let mut s = SinghalDynamic::new(SiteId(3), 5);
/// assert_eq!(s.request_set_len(), 3);
/// let mut fx = Effects::new();
/// s.request_cs(&mut fx);
/// assert_eq!(fx.sends().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SinghalDynamic {
    site: SiteId,
    n: u32,
    clock: LamportClock,
    /// The dynamic request set `R_i` (never contains `site`).
    request_set: BTreeSet<SiteId>,
    my_req: Option<Timestamp>,
    /// Sites we are awaiting a reply from for the current request.
    awaiting: BTreeSet<SiteId>,
    deferred: BTreeSet<SiteId>,
    in_cs: bool,
}

impl SinghalDynamic {
    /// Creates site `site` of an `n`-site system with the staircase
    /// initial request set `{0, …, site−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside `0..n`.
    pub fn new(site: SiteId, n: u32) -> Self {
        assert!(site.0 < n, "site outside universe");
        SinghalDynamic {
            site,
            n,
            clock: LamportClock::new(),
            request_set: (0..site.0).map(SiteId).collect(),
            my_req: None,
            awaiting: BTreeSet::new(),
            deferred: BTreeSet::new(),
            in_cs: false,
        }
    }

    /// Current size of the dynamic request set.
    pub fn request_set_len(&self) -> usize {
        self.request_set.len()
    }

    fn maybe_enter(&mut self, fx: &mut Effects<SdMsg>) {
        if !self.in_cs && self.my_req.is_some() && self.awaiting.is_empty() {
            self.in_cs = true;
            fx.enter_cs();
        }
    }
}

impl Protocol for SinghalDynamic {
    type Msg = SdMsg;

    fn site(&self) -> SiteId {
        self.site
    }

    fn request_cs(&mut self, fx: &mut Effects<SdMsg>) {
        assert!(self.my_req.is_none(), "one outstanding request per site");
        let ts = Timestamp {
            seq: self.clock.tick(),
            site: self.site,
        };
        self.my_req = Some(ts);
        self.awaiting = self.request_set.clone();
        for j in self.request_set.iter().copied().collect::<Vec<_>>() {
            fx.send(j, SdMsg::Request { ts });
        }
        self.maybe_enter(fx); // site 0's initial set is empty
        let _ = self.n;
    }

    fn release_cs(&mut self, fx: &mut Effects<SdMsg>) {
        assert!(self.in_cs, "not in CS");
        self.in_cs = false;
        self.my_req = None;
        for j in std::mem::take(&mut self.deferred) {
            // Granting j: j may enter before our next request, so we must
            // ask j next time (information-structure update).
            self.request_set.insert(j);
            fx.send(j, SdMsg::Reply);
        }
    }

    fn handle(&mut self, from: SiteId, msg: SdMsg, fx: &mut Effects<SdMsg>) {
        match msg {
            SdMsg::Request { ts } => {
                self.clock.observe_ts(ts);
                if self.in_cs {
                    self.deferred.insert(from);
                } else if let Some(my) = self.my_req {
                    if my.beats(&ts) {
                        // We have priority: defer the grant to our exit.
                        self.deferred.insert(from);
                    } else {
                        // The incoming request wins. Grant it, remember to
                        // ask `from` next time, and — crucially — make sure
                        // `from` knows about OUR pending request so it
                        // grants us on exit.
                        let first_contact = self.request_set.insert(from);
                        fx.send(from, SdMsg::Reply);
                        if first_contact || !self.awaiting.contains(&from) {
                            self.awaiting.insert(from);
                            fx.send(from, SdMsg::Request { ts: my });
                        }
                    }
                } else {
                    // Idle: grant, and ask `from` next time.
                    self.request_set.insert(from);
                    fx.send(from, SdMsg::Reply);
                }
            }
            SdMsg::Reply => {
                self.awaiting.remove(&from);
                self.maybe_enter(fx);
            }
        }
    }

    fn in_cs(&self) -> bool {
        self.in_cs
    }

    fn wants_cs(&self) -> bool {
        self.my_req.is_some() && !self.in_cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Harness;

    fn harness(n: u32) -> Harness<SinghalDynamic> {
        Harness::new((0..n).map(|i| SinghalDynamic::new(SiteId(i), n)).collect())
    }

    #[test]
    fn staircase_initial_sets() {
        let h = harness(4);
        assert_eq!(h.sites[0].request_set_len(), 0);
        assert_eq!(h.sites[3].request_set_len(), 3);
    }

    #[test]
    fn site_zero_enters_for_free_initially() {
        let mut h = harness(4);
        h.request(0);
        assert!(h.sites[0].in_cs());
        assert_eq!(h.settle(), 0);
    }

    #[test]
    fn light_load_costs_2_times_set_size() {
        let mut h = harness(5);
        h.request(3);
        let msgs = h.settle();
        assert!(h.sites[3].in_cs());
        assert_eq!(msgs, 6); // |R_3| = 3 requests + 3 replies
        h.release(3);
        assert_eq!(h.settle(), 0);
    }

    #[test]
    fn granting_adds_to_request_set() {
        let mut h = harness(3);
        h.request(2); // asks 0 and 1
        h.settle();
        // 0 and 1 granted site 2, so both now must ask 2 next time.
        assert!(h.sites[0].request_set_len() >= 1);
        assert!(h.sites[1].request_set_len() >= 2);
        h.release(2);
        h.settle();
        // Now site 0 requests: it must ask site 2 (and get permission).
        h.request(0);
        h.settle();
        assert!(h.sites[0].in_cs());
    }

    #[test]
    fn pairwise_safety_after_adaptation() {
        // The scenario that breaks naive implementations: 0 grants 2 while
        // idle, then 0 requests — without the set update, 0 and 2 could
        // both enter.
        let mut h = harness(3);
        h.request(2);
        h.settle();
        assert!(h.sites[2].in_cs());
        h.request(0);
        h.settle();
        assert!(!h.sites[0].in_cs(), "site 0 must wait for site 2");
        h.release(2);
        h.settle();
        assert!(h.sites[0].in_cs());
    }

    #[test]
    fn contention_is_safe_and_live() {
        let mut h = harness(5);
        for i in [4, 2, 0, 3, 1] {
            h.request(i);
        }
        h.drain_all(5);
    }

    #[test]
    fn repeated_rounds_converge_but_stay_correct() {
        let mut h = harness(4);
        for _ in 0..4 {
            for i in 0..4 {
                h.request(i);
            }
            h.drain_all(4);
        }
        // Sets have grown toward full but never past N-1.
        for s in &h.sites {
            assert!(s.request_set_len() <= 3);
        }
    }
}
