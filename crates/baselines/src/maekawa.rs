//! Maekawa's quorum-based algorithm (1985) with full deadlock resolution.
//!
//! Each site must lock every member of its quorum. Arbiters grant one
//! request at a time; contention is resolved with the `inquire` / `fail` /
//! `yield` triad: an arbiter that granted a lower-priority request probes
//! it (`inquire`); the grantee yields iff it already knows it cannot win
//! (it received a `fail` somewhere or yielded before).
//!
//! Message complexity `3(K−1)` at light load, `5(K−1)` under contention —
//! but the grant handoff always flows *through* the arbiter (`release` →
//! arbiter → `reply`), so the synchronization delay is `2T`. This is
//! exactly the cost the delay-optimal algorithm in `qmx-core` removes; the
//! two implementations share the message vocabulary so experiment output is
//! directly comparable.

use qmx_core::{
    Effects, LamportClock, MsgKind, MsgMeta, Protocol, ReqQueue, SeqNum, SiteId, Timestamp,
};
use std::collections::{BTreeSet, VecDeque};

/// Wire messages of Maekawa's algorithm (clock piggybacked for liveness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaekawaMsg {
    /// Sender clock sample.
    pub clk: SeqNum,
    /// Protocol content.
    pub body: MaekawaBody,
}

/// Message bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaekawaBody {
    /// Ask for the receiver's permission.
    Request {
        /// Timestamp of the request.
        ts: Timestamp,
    },
    /// Grant the receiver's request.
    Reply {
        /// The granted request.
        req: Timestamp,
    },
    /// The sender exited the CS.
    Release {
        /// The completed request.
        req: Timestamp,
    },
    /// Probe the current grantee for a possible yield.
    Inquire {
        /// The probed (granted) request.
        holder_req: Timestamp,
    },
    /// Tell a requester it is not next in line.
    Fail {
        /// The refused request.
        req: Timestamp,
    },
    /// Give the permission back for re-grant.
    Yield {
        /// The yielding site's request.
        req: Timestamp,
    },
}

impl MsgMeta for MaekawaMsg {
    fn kind(&self) -> MsgKind {
        match self.body {
            MaekawaBody::Request { .. } => MsgKind::Request,
            MaekawaBody::Reply { .. } => MsgKind::Reply,
            MaekawaBody::Release { .. } => MsgKind::Release,
            MaekawaBody::Inquire { .. } => MsgKind::Inquire,
            MaekawaBody::Fail { .. } => MsgKind::Fail,
            MaekawaBody::Yield { .. } => MsgKind::Yield,
        }
    }
}

/// One site of Maekawa's algorithm.
///
/// ```
/// use qmx_baselines::Maekawa;
/// use qmx_core::{Effects, Protocol, SiteId};
/// let quorum = vec![SiteId(0), SiteId(1), SiteId(2)];
/// let mut s = Maekawa::new(SiteId(0), quorum);
/// let mut fx = Effects::new();
/// s.request_cs(&mut fx);
/// assert_eq!(fx.sends().len(), 2); // self-grant is local
/// ```
#[derive(Debug, Clone)]
pub struct Maekawa {
    site: SiteId,
    req_set: Vec<SiteId>,
    clock: LamportClock,
    // Requester state.
    my_req: Option<Timestamp>,
    replied: BTreeSet<SiteId>,
    failed: bool,
    pending_inquires: Vec<SiteId>,
    in_cs: bool,
    // Arbiter state.
    lock: Option<Timestamp>,
    queue: ReqQueue,
    inquired: bool,
    /// Whether the `inquire` / `fail` / `yield` triad is active. Maekawa's
    /// algorithm *without* it (arbiters just queue behind the lock) admits
    /// the classic cyclic deadlock; [`Maekawa::without_yield`] builds that
    /// variant as a known-bad reference for the model checker.
    deadlock_free: bool,
    // Self-addressed messages (the site arbitrates its own membership).
    local_q: VecDeque<(SiteId, MaekawaMsg)>,
}

impl Maekawa {
    /// Creates a site with quorum `req_set`.
    ///
    /// # Panics
    ///
    /// Panics if `req_set` is empty or has duplicates.
    pub fn new(site: SiteId, req_set: Vec<SiteId>) -> Self {
        assert!(!req_set.is_empty(), "quorum must be non-empty");
        let uniq: BTreeSet<SiteId> = req_set.iter().copied().collect();
        assert_eq!(uniq.len(), req_set.len(), "quorum contains duplicates");
        Maekawa {
            site,
            req_set,
            clock: LamportClock::new(),
            my_req: None,
            replied: BTreeSet::new(),
            failed: false,
            pending_inquires: Vec::new(),
            in_cs: false,
            lock: None,
            queue: ReqQueue::new(),
            inquired: false,
            deadlock_free: true,
            local_q: VecDeque::new(),
        }
    }

    /// Creates a site running Maekawa's algorithm **without** the
    /// `inquire` / `fail` / `yield` deadlock-resolution triad: a locked
    /// arbiter silently queues every later request. With overlapping
    /// quorums two concurrent requesters can each capture one arbiter and
    /// wait forever for the other — the classic deadlock the triad exists
    /// to break. Kept as a known-bad baseline so the model checker's
    /// `Violation::Deadlock` detection has a pinned positive.
    ///
    /// # Panics
    ///
    /// Panics if `req_set` is empty or has duplicates.
    pub fn without_yield(site: SiteId, req_set: Vec<SiteId>) -> Self {
        let mut s = Maekawa::new(site, req_set);
        s.deadlock_free = false;
        s
    }

    /// The quorum this site locks.
    pub fn req_set(&self) -> &[SiteId] {
        &self.req_set
    }

    /// Arbiter lock view (tests).
    pub fn lock_holder(&self) -> Option<Timestamp> {
        self.lock
    }

    fn route(&mut self, fx: &mut Effects<MaekawaMsg>, to: SiteId, body: MaekawaBody) {
        let msg = MaekawaMsg {
            clk: self.clock.current(),
            body,
        };
        if to == self.site {
            self.local_q.push_back((self.site, msg));
        } else {
            fx.send(to, msg);
        }
    }

    fn pump(&mut self, fx: &mut Effects<MaekawaMsg>) {
        while let Some((from, msg)) = self.local_q.pop_front() {
            self.dispatch(from, msg, fx);
        }
    }

    fn dispatch(&mut self, from: SiteId, msg: MaekawaMsg, fx: &mut Effects<MaekawaMsg>) {
        self.clock.observe(msg.clk);
        match msg.body {
            MaekawaBody::Request { ts } => self.arb_request(ts, fx),
            MaekawaBody::Reply { req } => self.req_reply(from, req, fx),
            MaekawaBody::Release { req } => self.arb_release(req, fx),
            MaekawaBody::Inquire { holder_req } => self.req_inquire(from, holder_req, fx),
            MaekawaBody::Fail { req } => self.req_fail(req, fx),
            MaekawaBody::Yield { req } => self.arb_yield(from, req, fx),
        }
    }

    // --- arbiter role -------------------------------------------------

    fn arb_request(&mut self, ts: Timestamp, fx: &mut Effects<MaekawaMsg>) {
        self.clock.observe_ts(ts);
        match self.lock {
            None => {
                self.lock = Some(ts);
                self.inquired = false;
                self.route(fx, ts.site, MaekawaBody::Reply { req: ts });
            }
            Some(lock) => {
                if !self.deadlock_free {
                    // No triad: queue silently and let the requester hang.
                    self.queue.insert(ts);
                    return;
                }
                let old_head = self.queue.head();
                self.queue.insert(ts);
                if ts.beats(&lock) && self.queue.head() == Some(ts) {
                    // Highest-priority waiter: probe the grantee (once).
                    if !self.inquired {
                        self.inquired = true;
                        self.route(fx, lock.site, MaekawaBody::Inquire { holder_req: lock });
                    }
                    // A displaced head that had priority over the lock never
                    // received a fail on arrival; without one it can defer
                    // other arbiters' inquires forever (the deadlock Sanders
                    // reported in Maekawa's original algorithm).
                    if let Some(h) = old_head {
                        if h.beats(&lock) {
                            self.route(fx, h.site, MaekawaBody::Fail { req: h });
                        }
                    }
                } else {
                    self.route(fx, ts.site, MaekawaBody::Fail { req: ts });
                }
            }
        }
    }

    fn grant_next(&mut self, fx: &mut Effects<MaekawaMsg>) {
        self.inquired = false;
        match self.queue.pop() {
            None => self.lock = None,
            Some(p) => {
                self.lock = Some(p);
                self.route(fx, p.site, MaekawaBody::Reply { req: p });
            }
        }
    }

    fn arb_release(&mut self, req: Timestamp, fx: &mut Effects<MaekawaMsg>) {
        if self.lock != Some(req) {
            return; // stale
        }
        self.grant_next(fx);
    }

    fn arb_yield(&mut self, from: SiteId, req: Timestamp, fx: &mut Effects<MaekawaMsg>) {
        if self.lock != Some(req) || req.site != from {
            return; // stale
        }
        self.queue.insert(req);
        self.grant_next(fx);
    }

    // --- requester role -------------------------------------------------

    fn is_current(&self, req: Timestamp) -> bool {
        self.my_req == Some(req)
    }

    fn req_reply(&mut self, from: SiteId, req: Timestamp, fx: &mut Effects<MaekawaMsg>) {
        if !self.is_current(req) || self.in_cs {
            return;
        }
        self.replied.insert(from);
        if self.replied.len() == self.req_set.len() {
            self.in_cs = true;
            self.pending_inquires.clear();
            fx.enter_cs();
        }
    }

    fn req_inquire(&mut self, from: SiteId, holder_req: Timestamp, fx: &mut Effects<MaekawaMsg>) {
        if !self.is_current(holder_req) || self.in_cs {
            return; // stale, or the release will answer it
        }
        if self.failed {
            self.do_yield(from, fx);
        } else {
            self.pending_inquires.push(from);
        }
    }

    fn do_yield(&mut self, arbiter: SiteId, fx: &mut Effects<MaekawaMsg>) {
        let req = self.my_req.expect("yield requires a request");
        if self.replied.remove(&arbiter) {
            self.failed = true;
            self.route(fx, arbiter, MaekawaBody::Yield { req });
        }
    }

    fn req_fail(&mut self, req: Timestamp, fx: &mut Effects<MaekawaMsg>) {
        if !self.is_current(req) || self.in_cs {
            return;
        }
        self.failed = true;
        for arbiter in std::mem::take(&mut self.pending_inquires) {
            self.do_yield(arbiter, fx);
        }
    }
}

impl Protocol for Maekawa {
    type Msg = MaekawaMsg;

    fn site(&self) -> SiteId {
        self.site
    }

    fn request_cs(&mut self, fx: &mut Effects<MaekawaMsg>) {
        assert!(self.my_req.is_none(), "one outstanding request per site");
        let ts = Timestamp {
            seq: self.clock.tick(),
            site: self.site,
        };
        self.my_req = Some(ts);
        self.replied.clear();
        self.failed = false;
        self.pending_inquires.clear();
        for j in self.req_set.clone() {
            self.route(fx, j, MaekawaBody::Request { ts });
        }
        self.pump(fx);
    }

    fn release_cs(&mut self, fx: &mut Effects<MaekawaMsg>) {
        assert!(self.in_cs, "not in CS");
        let req = self.my_req.take().expect("in CS implies request");
        self.in_cs = false;
        self.replied.clear();
        self.failed = false;
        for j in self.req_set.clone() {
            self.route(fx, j, MaekawaBody::Release { req });
        }
        self.pump(fx);
    }

    fn handle(&mut self, from: SiteId, msg: MaekawaMsg, fx: &mut Effects<MaekawaMsg>) {
        self.dispatch(from, msg, fx);
        self.pump(fx);
    }

    fn in_cs(&self) -> bool {
        self.in_cs
    }

    fn wants_cs(&self) -> bool {
        self.my_req.is_some() && !self.in_cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Harness;

    /// Full quorum {0..n} for everyone (stress-tests arbitration; grid
    /// quorums are exercised in the integration tests).
    fn harness(n: u32) -> Harness<Maekawa> {
        let q: Vec<SiteId> = (0..n).map(SiteId).collect();
        Harness::new((0..n).map(|i| Maekawa::new(SiteId(i), q.clone())).collect())
    }

    #[test]
    fn uncontended_entry_costs_3_k_minus_1() {
        let mut h = harness(4);
        h.request(1);
        let pre = h.settle();
        assert!(h.sites[1].in_cs());
        assert_eq!(pre, 6); // 3 requests + 3 replies
        h.release(1);
        assert_eq!(h.settle(), 3); // 3 releases
    }

    #[test]
    fn contention_is_safe_and_live() {
        let mut h = harness(5);
        for i in 0..5 {
            h.request(i);
        }
        h.drain_all(5);
    }

    #[test]
    fn inquire_yield_resolves_priority_inversion() {
        // 1 gets the lock at arbiter 2 first; 0 (higher priority under
        // simultaneous request => smaller site id) preempts via
        // inquire/yield once 1 learns it failed somewhere.
        let mut h = harness(3);
        h.request(1);
        h.request(0);
        h.settle();
        // Priority: both seq=1 -> site 0 wins everywhere.
        assert_eq!(h.who_is_in_cs(), Some(0));
        h.release(0);
        h.settle();
        assert_eq!(h.who_is_in_cs(), Some(1));
        h.release(1);
        h.settle();
        assert_eq!(h.in_cs_count(), 0);
    }

    #[test]
    fn stale_messages_ignored() {
        let mut s = Maekawa::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        let mut fx = Effects::new();
        let ghost = Timestamp::new(5, SiteId(0));
        for body in [
            MaekawaBody::Reply { req: ghost },
            MaekawaBody::Fail { req: ghost },
            MaekawaBody::Inquire { holder_req: ghost },
            MaekawaBody::Release { req: ghost },
            MaekawaBody::Yield { req: ghost },
        ] {
            s.handle(
                SiteId(1),
                MaekawaMsg {
                    clk: SeqNum(5),
                    body,
                },
                &mut fx,
            );
        }
        assert!(fx.sends().is_empty());
        assert!(!s.in_cs());
    }

    #[test]
    fn arbiter_fails_lower_priority_requests() {
        let mut arb = Maekawa::new(SiteId(2), vec![SiteId(2)]);
        let mut fx = Effects::new();
        let r1 = Timestamp::new(1, SiteId(0));
        let r2 = Timestamp::new(2, SiteId(1));
        for (from, ts) in [(SiteId(0), r1), (SiteId(1), r2)] {
            arb.handle(
                from,
                MaekawaMsg {
                    clk: ts.seq,
                    body: MaekawaBody::Request { ts },
                },
                &mut fx,
            );
        }
        let sends = fx.take_sends();
        assert_eq!(arb.lock_holder(), Some(r1));
        assert!(matches!(sends[0].1.body, MaekawaBody::Reply { .. }));
        assert!(
            matches!(sends[1].1.body, MaekawaBody::Fail { .. }),
            "lower-priority request gets a fail, not silence"
        );
    }

    #[test]
    fn singleton_quorum() {
        let mut h = Harness::new(vec![Maekawa::new(SiteId(0), vec![SiteId(0)])]);
        h.request(0);
        assert!(h.sites[0].in_cs());
        h.release(0);
        assert_eq!(h.in_cs_count(), 0);
    }
}
