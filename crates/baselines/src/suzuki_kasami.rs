//! The Suzuki–Kasami broadcast token algorithm (1985).
//!
//! A single privilege token circulates; the site holding it enters the CS
//! locally. A site without the token broadcasts `request(n)` (its request
//! number) to all others; the token carries, per site, the request number
//! `LN[j]` of the last served request plus a FIFO queue of waiting sites.
//! On exit, the holder updates `LN`, appends every site whose latest
//! request is unserved, and ships the token to the queue head.
//!
//! `0` messages per CS when the holder re-enters, `N` otherwise
//! (`N−1` requests + 1 token); synchronization delay `T`.

use qmx_core::{Effects, MsgKind, MsgMeta, Protocol, SiteId};
use std::collections::VecDeque;

/// The privilege token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// `LN[j]`: request number of site `j`'s most recently served request.
    pub ln: Vec<u64>,
    /// Sites waiting for the token, FIFO.
    pub queue: VecDeque<SiteId>,
}

/// Wire messages of Suzuki–Kasami.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkMsg {
    /// Broadcast token request with the sender's request number.
    Request {
        /// The sender's current request number.
        n: u64,
    },
    /// The privilege token.
    Privilege(Token),
}

impl MsgMeta for SkMsg {
    fn kind(&self) -> MsgKind {
        match self {
            SkMsg::Request { .. } => MsgKind::Request,
            SkMsg::Privilege(_) => MsgKind::Token,
        }
    }
}

/// One site of the Suzuki–Kasami algorithm. Site 0 initially holds the
/// token.
///
/// ```
/// use qmx_baselines::SuzukiKasami;
/// use qmx_core::{Effects, Protocol, SiteId};
/// let mut s0 = SuzukiKasami::new(SiteId(0), 4);
/// assert!(s0.has_token());
/// let mut fx = Effects::new();
/// s0.request_cs(&mut fx); // token holder: zero-message entry
/// assert!(s0.in_cs());
/// assert!(fx.sends().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SuzukiKasami {
    site: SiteId,
    n: u32,
    rn: Vec<u64>,
    token: Option<Token>,
    requesting: bool,
    in_cs: bool,
}

impl SuzukiKasami {
    /// Creates site `site` of an `n`-site system (token starts at site 0).
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside `0..n`.
    pub fn new(site: SiteId, n: u32) -> Self {
        assert!(site.0 < n, "site outside universe");
        SuzukiKasami {
            site,
            n,
            rn: vec![0; n as usize],
            token: (site.0 == 0).then(|| Token {
                ln: vec![0; n as usize],
                queue: VecDeque::new(),
            }),
            requesting: false,
            in_cs: false,
        }
    }

    /// Whether this site currently holds the token.
    pub fn has_token(&self) -> bool {
        self.token.is_some()
    }

    fn pass_token(&mut self, fx: &mut Effects<SkMsg>) {
        let Some(token) = self.token.as_mut() else {
            return;
        };
        // Append every site whose latest known request is unserved.
        for j in 0..self.n as usize {
            let sj = SiteId(j as u32);
            if sj != self.site && self.rn[j] == token.ln[j] + 1 && !token.queue.contains(&sj) {
                token.queue.push_back(sj);
            }
        }
        if let Some(next) = token.queue.pop_front() {
            let token = self.token.take().expect("checked above");
            fx.send(next, SkMsg::Privilege(token));
        }
    }
}

impl Protocol for SuzukiKasami {
    type Msg = SkMsg;

    fn site(&self) -> SiteId {
        self.site
    }

    fn request_cs(&mut self, fx: &mut Effects<SkMsg>) {
        assert!(!self.requesting && !self.in_cs, "one outstanding request");
        self.requesting = true;
        if self.token.is_some() {
            // Idle token held locally: zero-message entry.
            self.in_cs = true;
            fx.enter_cs();
            return;
        }
        let i = self.site.index();
        self.rn[i] += 1;
        let n = self.rn[i];
        for j in (0..self.n).map(SiteId).filter(|s| *s != self.site) {
            fx.send(j, SkMsg::Request { n });
        }
    }

    fn release_cs(&mut self, fx: &mut Effects<SkMsg>) {
        assert!(self.in_cs, "not in CS");
        self.in_cs = false;
        self.requesting = false;
        let i = self.site.index();
        let token = self.token.as_mut().expect("in CS implies token");
        token.ln[i] = self.rn[i];
        self.pass_token(fx);
    }

    fn handle(&mut self, from: SiteId, msg: SkMsg, fx: &mut Effects<SkMsg>) {
        match msg {
            SkMsg::Request { n } => {
                let j = from.index();
                self.rn[j] = self.rn[j].max(n);
                // Idle token holder ships the token immediately.
                if !self.in_cs && !self.requesting {
                    if let Some(token) = self.token.as_ref() {
                        if self.rn[j] == token.ln[j] + 1 {
                            self.pass_token(fx);
                        }
                    }
                }
            }
            SkMsg::Privilege(token) => {
                debug_assert!(self.token.is_none(), "duplicate token");
                self.token = Some(token);
                if self.requesting {
                    self.in_cs = true;
                    fx.enter_cs();
                }
            }
        }
    }

    fn in_cs(&self) -> bool {
        self.in_cs
    }

    fn wants_cs(&self) -> bool {
        self.requesting && !self.in_cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Harness;

    fn harness(n: u32) -> Harness<SuzukiKasami> {
        Harness::new((0..n).map(|i| SuzukiKasami::new(SiteId(i), n)).collect())
    }

    #[test]
    fn holder_enters_with_zero_messages() {
        let mut h = harness(4);
        h.request(0);
        assert!(h.sites[0].in_cs());
        assert_eq!(h.settle(), 0);
        h.release(0);
        assert_eq!(h.settle(), 0, "token stays put with no waiters");
        assert!(h.sites[0].has_token());
    }

    #[test]
    fn non_holder_entry_costs_n_messages() {
        let mut h = harness(5);
        h.request(3);
        let msgs = h.settle();
        assert!(h.sites[3].in_cs());
        assert_eq!(msgs, 5); // 4 requests + 1 token
        assert!(h.sites[3].has_token());
        assert!(!h.sites[0].has_token());
    }

    #[test]
    fn token_queue_serves_waiters_in_fifo_order() {
        let mut h = harness(3);
        h.request(0); // holder enters immediately
        h.settle();
        h.request(1);
        h.settle();
        h.request(2);
        h.settle();
        assert!(h.sites[0].in_cs());
        h.release(0);
        h.settle();
        assert_eq!(h.who_is_in_cs(), Some(1));
        h.release(1);
        h.settle();
        assert_eq!(h.who_is_in_cs(), Some(2));
        h.release(2);
        h.settle();
        assert_eq!(h.in_cs_count(), 0);
    }

    #[test]
    fn contention_is_safe_and_live() {
        let mut h = harness(6);
        for i in (0..6).rev() {
            h.request(i);
        }
        h.drain_all(6);
    }

    #[test]
    fn duplicate_requests_do_not_duplicate_queue_entries() {
        let mut h = harness(3);
        h.request(0);
        h.settle();
        h.request(1);
        h.settle();
        // Site 1's request is recorded once in the token queue.
        h.release(0);
        h.settle();
        assert_eq!(h.who_is_in_cs(), Some(1));
        h.release(1);
        h.settle();
        // No phantom re-grant to site 1.
        assert_eq!(h.in_cs_count(), 0);
        assert!(h.sites[1].has_token());
    }

    #[test]
    fn exactly_one_token_exists() {
        let h = harness(5);
        assert_eq!(h.sites.iter().filter(|s| s.has_token()).count(), 1);
    }
}
